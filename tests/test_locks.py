"""LockTable unit tests: mutual exclusion, diagnostics, deadlock detection."""

import threading
import time

import pytest

from repro.errors import TetraDeadlockError
from repro.runtime.locks import LockTable


class TestBasics:
    def test_acquire_release_cycle(self):
        table = LockTable()
        table.acquire("a", 1)
        assert table.holder_of("a") == 1
        table.release("a", 1)
        assert table.holder_of("a") is None

    def test_known_locks(self):
        table = LockTable()
        table.acquire("z", 1)
        table.acquire("a", 1)
        assert table.known_locks() == ["a", "z"]

    def test_stats_count_acquisitions(self):
        table = LockTable()
        for _ in range(3):
            table.acquire("a", 1)
            table.release("a", 1)
        assert table.stats["a"].acquisitions == 3
        assert table.stats["a"].contended_acquisitions == 0

    def test_release_by_non_owner_rejected(self):
        table = LockTable()
        table.acquire("a", 1)
        with pytest.raises(TetraDeadlockError, match="does not hold"):
            table.release("a", 2)

    def test_self_reentry_diagnosed(self):
        table = LockTable()
        table.register_thread(1, "thread one")
        table.acquire("a", 1)
        with pytest.raises(TetraDeadlockError, match="not re-entrant"):
            table.acquire("a", 1)

    def test_reentry_message_names_thread(self):
        table = LockTable()
        table.register_thread(7, "worker 7")
        table.acquire("guard", 7)
        with pytest.raises(TetraDeadlockError, match="worker 7"):
            table.acquire("guard", 7)


class TestContention:
    def test_mutual_exclusion_with_real_threads(self):
        table = LockTable()
        counter = {"value": 0}

        def work(key):
            for _ in range(200):
                table.acquire("c", key)
                try:
                    # Deliberately non-atomic read-modify-write.
                    current = counter["value"]
                    counter["value"] = current + 1
                finally:
                    table.release("c", key)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == 800

    def test_contended_stat_increments(self):
        table = LockTable()
        table.acquire("a", 1)
        seen = []

        def waiter():
            table.acquire("a", 2)
            seen.append(True)
            table.release("a", 2)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        table.release("a", 1)
        t.join()
        assert seen == [True]
        assert table.stats["a"].contended_acquisitions >= 1


class TestDeadlockDetection:
    def test_two_thread_cycle_detected(self):
        table = LockTable()
        table.register_thread("T1", "thread one")
        table.register_thread("T2", "thread two")
        table.acquire("a", "T1")
        table.acquire("b", "T2")
        results = {}

        def t1():
            try:
                table.acquire("b", "T1")
                table.release("b", "T1")
            except TetraDeadlockError as e:
                results["T1"] = e
            finally:
                table.release("a", "T1")  # break the cycle so peers drain

        def t2():
            try:
                table.acquire("a", "T2")
                table.release("a", "T2")
            except TetraDeadlockError as e:
                results["T2"] = e
            finally:
                table.release("b", "T2")

        threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results, "at least one thread must detect the cycle"
        error = next(iter(results.values()))
        assert "deadlock detected" in str(error)
        assert "consistent order" in str(error)

    def test_waiting_without_cycle_is_not_deadlock(self):
        table = LockTable()
        table.acquire("a", 1)
        got = []

        def waiter():
            table.acquire("a", 2)
            got.append("ok")
            table.release("a", 2)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.1)  # several poll intervals: no false positive
        assert got == []
        table.release("a", 1)
        t.join()
        assert got == ["ok"]

    def test_three_thread_cycle_detected(self):
        table = LockTable()
        for key, name in [(1, "one"), (2, "two"), (3, "three")]:
            table.register_thread(key, name)
        table.acquire("a", 1)
        table.acquire("b", 2)
        table.acquire("c", 3)
        caught = []

        held = {1: "a", 2: "b", 3: "c"}

        def chase(key, want):
            try:
                table.acquire(want, key)
                table.release(want, key)
            except TetraDeadlockError as e:
                caught.append(e)
            finally:
                table.release(held[key], key)  # drain the other waiters

        threads = [
            threading.Thread(target=chase, args=(1, "b")),
            threading.Thread(target=chase, args=(2, "c")),
            threading.Thread(target=chase, args=(3, "a")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert caught
        assert caught[0].cycle  # the cycle description is attached


class TestEventDrivenWaiting:
    """The table wakes waiters on release and checks for cycles at block
    time — it must never depend on the fallback poll for correctness."""

    def test_release_wakes_waiter_promptly(self, monkeypatch):
        # With the fallback poll effectively disabled, a waiter must still
        # be woken by the release notification.
        monkeypatch.setattr(LockTable, "FALLBACK_POLL", 60.0)
        table = LockTable()
        table.acquire("a", 1)
        acquired = threading.Event()

        def waiter():
            table.acquire("a", 2)
            acquired.set()
            table.release("a", 2)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)  # let the waiter block
        start = time.monotonic()
        table.release("a", 1)
        assert acquired.wait(timeout=2.0), \
            "waiter not woken by release (stuck until fallback poll)"
        assert time.monotonic() - start < 2.0
        t.join(timeout=5)

    def test_cycle_detected_at_block_time(self, monkeypatch):
        # The thread that closes the cycle sees it immediately when it
        # blocks — no polling needed.
        monkeypatch.setattr(LockTable, "FALLBACK_POLL", 60.0)
        table = LockTable()
        table.register_thread("T1", "thread one")
        table.register_thread("T2", "thread two")
        table.acquire("a", "T1")
        table.acquire("b", "T2")
        caught = threading.Event()
        results = {}

        def t1():
            try:
                table.acquire("b", "T1")
                table.release("b", "T1")
            except TetraDeadlockError as e:
                results["T1"] = e
                caught.set()
            finally:
                table.release("a", "T1")

        def t2():
            try:
                table.acquire("a", "T2")
                table.release("a", "T2")
            except TetraDeadlockError as e:
                results["T2"] = e
                caught.set()
            finally:
                table.release("b", "T2")

        threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
        start = time.monotonic()
        for t in threads:
            t.start()
        assert caught.wait(timeout=5.0), "cycle not detected at block time"
        assert time.monotonic() - start < 5.0
        for t in threads:
            t.join(timeout=10)
        assert results
