"""Guardrails, clean cancellation, and the seeded chaos harness.

Covers the resilience layer end to end: time/memory limits and the cancel
token on all four backends, SIGINT aborting cleanly with partial reports,
wait-for-graph deadlock reports carrying the span of *every* blocked lock
statement, seed-deterministic fault injection on the virtual-clock
backends, and ``tetra stress`` flipping a known-racy example.
"""

import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import run_source
from repro.errors import (
    EXIT_CANCELLED,
    EXIT_DEADLOCK,
    EXIT_LIMIT,
    TetraCancelledError,
    TetraDeadlockError,
    TetraInternalError,
    TetraLimitError,
    exit_code_for,
    is_catchable,
)
from repro.resilience import CancelToken, FaultPlan, run_stress
from repro.runtime import RuntimeConfig
from repro.runtime.locks import LockTable
from repro.source import Span

BACKENDS = ["thread", "sequential", "coop", "sim"]

SPIN = """
def main():
    print("started")
    i = 0
    while true:
        i = i + 1
"""

RACY_MAX = """
def racy_max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            largest = num
    return largest

def main():
    nums = [90, 1, 2, 3]
    print(racy_max(nums))
"""

ABBA = """
def take_ab():
    lock a:
        x = 1
        lock b:
            x = 2

def take_ba():
    lock b:
        y = 1
        lock a:
            y = 2

def main():
    parallel:
        take_ab()
        take_ba()
"""


def _limit_for(backend: str) -> float:
    # Host seconds on the real-clock backends, virtual units on sim/coop.
    return 0.5 if backend in ("thread", "sequential") else 2000.0


class TestTimeLimit:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infinite_loop_aborts_on_every_backend(self, backend):
        result = run_source(SPIN, backend=backend, cache=False,
                            time_limit=_limit_for(backend),
                            on_error="return")
        assert result.aborted_by == "time"
        assert isinstance(result.error, TetraLimitError)
        assert result.error.limit == "time"
        # Partial output from before the abort survives.
        assert result.output == "started\n"
        # The diagnostic points into the loop and suggests the remedy.
        assert result.error.span.line > 0
        assert "--time-limit" in result.error.message

    @pytest.mark.parametrize("backend", ["coop", "sim"])
    def test_virtual_limits_are_deterministic(self, backend):
        errors = set()
        for _ in range(2):
            result = run_source(SPIN, backend=backend, cache=False,
                                time_limit=500.0, on_error="return")
            errors.add(str(result.error))
        assert len(errors) == 1

    def test_time_limit_exit_code(self):
        exc = TetraLimitError("too slow", limit="time")
        assert exit_code_for(exc) == EXIT_LIMIT


class TestMemoryLimit:
    def test_allocation_bomb_aborts(self):
        result = run_source(
            """
def main():
    keep = [0]
    i = 0
    while i < 100000:
        keep = concat(keep, [1, 2, 3, 4, 5, 6, 7, 8])
        i = i + 1
""",
            backend="sequential", cache=False, memory_limit=3000,
            on_error="return")
        assert result.aborted_by == "memory"
        assert result.error.limit == "memory"
        assert "memory budget" in result.error.message

    def test_live_heap_not_cumulative_allocation(self):
        # Dropped containers are credited back by their finalizers: a loop
        # that allocates far more than the budget but keeps little alive
        # must run to completion.
        result = run_source(
            """
def main():
    i = 0
    while i < 2000:
        scratch = [1, 2, 3, 4, 5, 6, 7, 8]
        i = i + 1
    print("done")
""",
            backend="sequential", cache=False, memory_limit=1000,
            on_error="return")
        assert result.aborted_by is None, result.error
        assert result.output == "done\n"

    def test_not_catchable_by_tetra_try(self):
        result = run_source(
            """
def main():
    try:
        big = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        print(big[0])
    catch err:
        print("caught")
""",
            backend="sequential", cache=False, memory_limit=4,
            on_error="return")
        # The limit abort must NOT be swallowed by the student's catch.
        assert result.aborted_by == "memory"
        assert "caught" not in result.output


class TestCancellation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_token_cancels_run(self, backend):
        token = CancelToken()
        if backend in ("thread", "sequential"):
            threading.Timer(0.3, token.cancel, args=("test asked",)).start()
        else:
            # Virtual-clock backends run the loop deterministically; cancel
            # up front so the very first statement observes the token.
            token.cancel("test asked")
        result = run_source(SPIN, backend=backend, cache=False,
                            cancel=token, on_error="return")
        assert result.aborted_by == "cancelled"
        assert isinstance(result.error, TetraCancelledError)
        assert "test asked" in result.error.message

    def test_cancelled_is_not_catchable(self):
        assert not is_catchable(TetraCancelledError("stop"))
        assert exit_code_for(TetraCancelledError("stop")) == EXIT_CANCELLED

    def test_first_cancel_reason_wins(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_sigint_aborts_cleanly_with_partial_metrics(self, tmp_path):
        prog = tmp_path / "spin.ttr"
        prog.write_text(SPIN)
        driver = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.tools.cli import main\n"
            "sys.exit(main(['run', %r, '--backend', 'thread',"
            " '--metrics']))\n" % str(prog)
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", driver], cwd="/root/repo",
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(1.5)  # let it compile and enter the loop
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == EXIT_CANCELLED
        # Output printed before the interrupt survives the abort...
        assert b"started" in out
        # ...the diagnostic explains what happened...
        assert b"cancelled" in err
        assert b"Ctrl-C" in err
        # ...and the metrics report still renders (partial, not lost).
        assert b"run metrics" in err


class TestDeadlockSpans:
    def test_thread_locktable_cycle_reports_both_spans(self):
        table = LockTable()
        table.fallback_poll = 0.05
        table.register_thread("T1", "thread one")
        table.register_thread("T2", "thread two")
        span_a = Span(0, 4, 10, 5)
        span_b = Span(0, 4, 20, 9)
        table.acquire("a", "T1", span_a)
        table.acquire("b", "T2", span_b)
        caught = []

        def t1():
            try:
                table.acquire("b", "T1", span_a)
                table.release("b", "T1")
            except TetraDeadlockError as exc:
                caught.append(exc)
            finally:
                table.release("a", "T1")

        def t2():
            try:
                table.acquire("a", "T2", span_b)
                table.release("a", "T2")
            except TetraDeadlockError as exc:
                caught.append(exc)
            finally:
                table.release("b", "T2")

        threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert caught, "no deadlock detected"
        exc = caught[0]
        # The report carries the span of EVERY blocked lock statement.
        lines = {s.line for s in exc.blocked_spans}
        assert lines == {10, 20}
        assert exit_code_for(exc) == EXIT_DEADLOCK

    def test_abba_program_on_coop_reports_both_lock_lines(self):
        # The round-robin coop schedule interleaves the two takers into the
        # deadlock deterministically.
        result = run_source(ABBA, backend="coop", cache=False,
                            on_error="return")
        assert result.aborted_by == "deadlock"
        exc = result.error
        lines = {s.line for s in exc.blocked_spans}
        # Both blocked `lock` statements: `lock b:` in take_ab (line 5)
        # and `lock a:` in take_ba (line 11).
        assert lines == {5, 11}
        rendered = exc.render()
        assert "also blocked at" in rendered

    def test_lock_poll_interval_is_instance_configurable(self):
        table = LockTable()
        assert table.fallback_poll == LockTable.FALLBACK_POLL
        table.fallback_poll = 0.01
        assert LockTable.FALLBACK_POLL != 0.01  # class default untouched


class TestCoopSchedulerDiagnostics:
    def test_wait_until_paused_timeout_names_the_culprit(self):
        from repro.runtime.coop import CoopScheduler, RoundRobinPolicy

        sched = CoopScheduler(RoundRobinPolicy())

        class FakeCtx:
            id = 7
            label = "stuck thread"

        record = sched.register(FakeCtx())
        sched.statements_run[7] = 42
        sched.turn_holder = 7  # simulate a thread wedged mid-turn
        with pytest.raises(TetraInternalError) as info:
            sched.wait_until_paused(timeout=0.05)
        message = str(info.value)
        assert "stuck thread" in message
        assert record.state in message
        assert "42" in message


class TestChaosDeterminism:
    @pytest.mark.parametrize("backend", ["coop", "sim"])
    def test_same_seed_same_output_and_fault_schedule(self, backend):
        runs = []
        for _ in range(3):
            result = run_source(RACY_MAX, backend=backend, cache=False,
                                chaos_seed=11, on_error="return")
            runs.append((
                result.output,
                tuple((f.kind, f.where, f.detail) for f in result.faults),
                dict(result.fault_counts),
            ))
        assert runs[0] == runs[1] == runs[2]

    def test_different_seeds_reach_different_coop_schedules(self):
        outputs = {
            run_source(RACY_MAX, backend="coop", cache=False,
                       chaos_seed=seed, on_error="return").output
            for seed in range(8)
        }
        # The racy max has schedule-dependent answers; eight seeded
        # schedules must not all agree (that is the point of chaos).
        assert len(outputs) > 1

    def test_fault_plan_spawn_shuffle_is_seeded(self):
        jobs = [("ctx%d" % i, lambda: None) for i in range(6)]
        order1 = [c for c, _ in FaultPlan(3).perturb_jobs(list(jobs))]
        order2 = [c for c, _ in FaultPlan(3).perturb_jobs(list(jobs))]
        order3 = [c for c, _ in FaultPlan(4).perturb_jobs(list(jobs))]
        assert order1 == order2
        assert order1 != [c for c, _ in jobs] or order3 != order1

    def test_injected_thread_faults_are_aggregated(self):
        plan = FaultPlan(1, thread_fault_prob=1.0)
        result = run_source(
            """
def main():
    parallel:
        print("a")
        print("b")
""",
            backend="sequential", cache=False,
            config=RuntimeConfig(fault_plan=plan), on_error="return")
        assert result.aborted_by == "error"
        assert "injected" in str(result.error)
        assert plan.counts.get("thread-fault") == 2


class TestStressHarness:
    def test_stress_flips_known_racy_example(self):
        report = run_stress(RACY_MAX, seeds=8, backends=("coop",),
                            detect_races=True)
        assert report.findings >= 1
        assert report.divergent or report.race_hits
        text = report.render()
        assert "FINDING" in text

    def test_stress_report_is_reproducible_per_seed(self):
        kwargs = dict(seeds=5, backends=("coop",), detect_races=False)
        a = run_stress(RACY_MAX, **kwargs)
        b = run_stress(RACY_MAX, **kwargs)
        assert [o.output for o in a.outcomes] == \
            [o.output for o in b.outcomes]
        assert a.render() == b.render()

    def test_stress_clean_program_has_no_findings(self):
        report = run_stress(
            """
def main():
    total = 0
    lock sum:
        total = total + 1
    print(total)
""",
            seeds=3, backends=("coop", "sequential"), detect_races=True)
        assert report.findings == 0
        assert "no findings" in report.render()

    def test_stress_reports_deadlocks(self):
        # Not every seeded schedule hits the AB/BA window (that is the
        # point of running many); across a handful at least one must.
        report = run_stress(ABBA, seeds=4, backends=("coop",),
                            detect_races=False)
        assert len(report.deadlocks) >= 1
        assert "deadlock" in report.render()


class TestLimitMessagesAndCodes:
    def test_step_limit_names_flag_and_kind(self):
        result = run_source(SPIN, backend="sequential", cache=False,
                            config=RuntimeConfig(step_limit=100),
                            on_error="return")
        assert result.aborted_by == "steps"
        assert "--step-limit" in result.error.message

    def test_recursion_limit_names_kind(self):
        result = run_source(
            """
def loop(n int) int:
    return loop(n + 1)

def main():
    print(loop(0))
""",
            backend="sequential", cache=False,
            config=RuntimeConfig(recursion_limit=40), on_error="return")
        assert result.aborted_by == "recursion"
        assert "recursion depth exceeded" in result.error.message


class TestOutputLimit:
    """The captured-output guardrail: a print loop must not be an OOM
    vector just because the *value heap* stays small."""

    NOISY = 'def main():\n    while true:\n        print("aaaaaaaaaa")\n'

    def test_explicit_limit_aborts_with_output_kind(self):
        result = run_source(self.NOISY, output_limit=500,
                            on_error="return")
        assert result.aborted_by == "output"
        assert isinstance(result.error, TetraLimitError)
        assert exit_code_for(result.error) == EXIT_LIMIT
        assert "--output-limit" in result.error.message
        # Partial output survives: everything up to (and including) the
        # chunk that crossed the cap.
        assert 500 <= len(result.output) <= 520

    def test_memory_limit_derives_an_output_cap(self):
        # A tight heap budget used to leave output unbounded — the two
        # guardrails cover one OOM vector together now.
        from repro.resilience.guard import OUTPUT_CHARS_PER_CELL

        result = run_source(self.NOISY, memory_limit=10,
                            on_error="return")
        assert result.aborted_by == "output"
        cap = 10 * OUTPUT_CHARS_PER_CELL
        assert cap <= len(result.output) <= cap + 20

    def test_explicit_limit_wins_over_derived(self):
        result = run_source(self.NOISY, memory_limit=10,
                            output_limit=2000, on_error="return")
        assert result.aborted_by == "output"
        assert len(result.output) >= 2000

    def test_under_the_limit_is_untouched(self):
        result = run_source('def main():\n    print("ok")\n',
                            output_limit=100)
        assert result.output == "ok\n"

    @pytest.mark.parametrize("backend",
                             ["thread", "sequential", "coop", "sim"])
    def test_all_backends_enforce_it(self, backend):
        result = run_source(self.NOISY, backend=backend, output_limit=300,
                            on_error="return")
        assert result.aborted_by == "output"

    def test_parallel_writers_cannot_overshoot_much(self):
        src = (
            "def main():\n"
            "    parallel for i in [1 ... 4]:\n"
            "        while true:\n"
            '            print("bbbbbbbbbb")\n'
        )
        result = run_source(src, output_limit=1000, on_error="return")
        assert result.aborted_by == "output"
        # Metering happens under the write lock, so concurrent printers
        # stop within one chunk of the cap — not workers * chunks later.
        assert len(result.output) <= 1000 + 20
