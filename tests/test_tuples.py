"""Tests for tuples — the last of the paper's future-work built-in types.

Covers the checker's static rules (constant indexing, immutability, arity
matching in unpacking), runtime semantics on every backend, compiled-code
differentials, and unparse round trips.
"""

import textwrap

import pytest

from conftest import run
from repro.api import run_source
from repro.compiler import run_compiled
from repro.errors import TetraSyntaxError
from repro.parser import parse_source
from repro.source import SourceFile
from repro.tetra_ast import node_equal, unparse
from repro.types import INT, STRING, TupleType, check_program, collect_diagnostics


def errors_of(text: str) -> list[str]:
    text = textwrap.dedent(text)
    source = SourceFile.from_string(text)
    return [e.message for e in collect_diagnostics(parse_source(source), source)]


def reject(text: str, match: str):
    msgs = errors_of(text)
    assert any(match in m for m in msgs), msgs


class TestTupleChecker:
    def test_literal_type(self):
        source = SourceFile.from_string(
            'def main():\n    p = (1, "one")\n'
        )
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("p").type == TupleType((INT, STRING))

    def test_constant_index_types(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def main():
                p = (1, "one")
                a = p[0]
                b = p[1]
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        scope = symbols.scope_of("main")
        assert scope.lookup("a").type == INT
        assert scope.lookup("b").type == STRING

    def test_dynamic_index_rejected(self):
        reject("""
            def main():
                p = (1, 2)
                i = 0
                x = p[i]
        """, "constant index")

    def test_out_of_range_index_rejected(self):
        reject("def main():\n    x = (1, 2)[5]\n", "out of range for a 2-tuple")

    def test_element_assignment_rejected(self):
        reject("""
            def main():
                p = (1, 2)
                p[0] = 9
        """, "tuples are immutable")

    def test_unpack_arity_checked(self):
        reject("""
            def main():
                a, b, c = (1, 2)
        """, "cannot unpack a 2-tuple into 3")

    def test_unpack_non_tuple_rejected(self):
        reject("def main():\n    a, b = 5\n", "only tuples can be unpacked")

    def test_unpack_types_flow(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def main():
                a, b = (1, "x")
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        scope = symbols.scope_of("main")
        assert scope.lookup("a").type == INT
        assert scope.lookup("b").type == STRING

    def test_unpack_type_conflict(self):
        reject("""
            def main():
                a = "s"
                a, b = (1, 2)
        """, "cannot hold")

    def test_one_tuple_rejected(self):
        with pytest.raises(TetraSyntaxError, match="at least two"):
            parse_source("def main():\n    p = (1,)\n")

    def test_function_returning_tuple(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def pair() (int, int):
                return (1, 2)

            def main():
                a, b = pair()
        """))
        program = parse_source(source)
        check_program(program, source)

    def test_tuple_parameter(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def first(p (int, string)) int:
                return p[0]

            def main():
                print(first((7, "seven")))
        """))
        check_program(parse_source(source), source)

    def test_nested_tuple_type(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def main():
                p = ((1, 2), "label")
                inner = p[0]
                x = inner[1]
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("x").type == INT

    def test_tuple_equality_same_shape(self):
        assert errors_of("def main():\n    b = (1, 2) == (3, 4)\n") == []

    def test_tuple_equality_different_shape(self):
        reject("def main():\n    b = (1, 2) == (1, \"a\")\n", "cannot compare")


class TestTupleRuntime:
    def test_literal_and_index(self, any_backend):
        assert run("""
            def main():
                p = (10, "ten", true)
                print(p[0], " ", p[1], " ", p[2])
                print(p)
        """, backend=any_backend) == ["10 ten true", "(10, ten, true)"]

    def test_unpacking(self, any_backend):
        assert run("""
            def main():
                a, b = (1, 2)
                print(a + b)
        """, backend=any_backend) == ["3"]

    def test_multi_return_idiom(self, any_backend):
        assert run("""
            def divmod2(a int, b int) (int, int):
                return (a / b, a % b)

            def main():
                q, r = divmod2(17, 5)
                print(q, " ", r)
        """, backend=any_backend) == ["3 2"]

    def test_unpack_into_array_elements(self):
        assert run("""
            def main():
                xs = [0, 0]
                xs[0], xs[1] = (7, 8)
                print(xs)
        """) == ["[7, 8]"]

    def test_swap_idiom(self):
        assert run("""
            def main():
                a = 1
                b = 2
                a, b = (b, a)
                print(a, " ", b)
        """) == ["2 1"]

    def test_tuple_int_widens_in_real_slot(self):
        assert run("""
            def point() (real, real):
                return (1, 2)

            def main():
                x, y = point()
                print(x, " ", y)
        """) == ["1.0 2.0"]

    def test_tuples_in_arrays(self):
        assert run("""
            def main():
                points = [(1, 2), (3, 4)]
                print(points[1][0])
                print(points)
        """) == ["3", "[(1, 2), (3, 4)]"]

    def test_tuples_as_dict_values(self):
        assert run("""
            def main():
                spans {string: (int, int)} = {}
                spans["a"] = (1, 5)
                lo, hi = spans["a"]
                print(lo, " ", hi)
        """) == ["1 5"]

    def test_tuple_equality(self):
        assert run("""
            def main():
                print((1, 2) == (1, 2), " ", (1, 2) != (1, 3))
        """) == ["true true"]

    def test_str_of_tuple(self):
        assert run("""
            def main():
                print(str((1, 2.5)))
        """) == ["(1, 2.5)"]

    def test_tuple_from_parallel_block(self):
        assert run("""
            def main():
                parallel:
                    p = (1, "a")
                    q = (2, "b")
                print(p[1], q[1])
        """) == ["ab"]


class TestTupleCompiled:
    def differential(self, text):
        text = textwrap.dedent(text)
        interpreted = run_source(text).output
        compiled = run_compiled(text).output
        assert interpreted == compiled
        return interpreted

    def test_full_feature_differential(self):
        self.differential("""
            def stats(xs [int]) (int, int, real):
                total = 0
                hi = xs[0]
                for x in xs:
                    total += x
                    hi = max(hi, x)
                return (total, hi, real(total) / real(len(xs)))

            def main():
                total, hi, mean = stats([4, 8, 6])
                print(total, " ", hi, " ", mean)
                nested = ((1, 2), (3, 4))
                print(nested[0][1], " ", nested)
        """)

    def test_unpack_into_elements_differential(self):
        self.differential("""
            def main():
                xs = [0.0, 0.0]
                xs[0], xs[1] = (1, 2.5)
                print(xs)
        """)


class TestTupleUnparse:
    @pytest.mark.parametrize("text", [
        'def main():\n    p = (1, "a", true)\n',
        'def pair() (int, int):\n    return (1, 2)\n',
        'def main():\n    a, b = (1, 2)\n',
        'def main():\n    p ((int, int), string) = ((1, 2), "x")\n',
        'def f(p (int, [real])) (bool, bool):\n    return (true, false)\n',
    ])
    def test_round_trip(self, text):
        program = parse_source(text)
        assert node_equal(program, parse_source(unparse(program)))

    def test_grouping_parens_not_tuples(self):
        # (1 + 2) is grouping, not a 1-tuple.
        assert run("""
            def main():
                x = (1 + 2) * 3
                print(x)
        """) == ["9"]
