"""Shared fixtures and helpers for the Tetra test suite."""

from __future__ import annotations

import textwrap

import pytest

from repro.api import run_source


def run(text: str, inputs: list[str] | None = None, backend="thread",
        config=None, **kwargs):
    """Run dedented Tetra source and return its output lines."""
    result = run_source(textwrap.dedent(text), inputs=inputs,
                        backend=backend, config=config, **kwargs)
    return result.output_lines()


def run_output(text: str, inputs: list[str] | None = None, backend="thread",
               config=None, **kwargs) -> str:
    """Run dedented Tetra source and return raw output."""
    return run_source(textwrap.dedent(text), inputs=inputs, backend=backend,
                      config=config, **kwargs).output


@pytest.fixture(params=["thread", "sequential", "coop", "sim"])
def any_backend(request):
    """Parameterizes a test over every execution backend."""
    return request.param
