"""Runtime value semantics: numerics, arrays, display."""

import pytest

from repro.errors import TetraIndexError, TetraZeroDivisionError
from repro.runtime.values import (
    TetraArray,
    coerce_to,
    deep_copy,
    display,
    int_div,
    int_mod,
    make_array,
    real_div,
    real_mod,
    tetra_pow,
    type_of_value,
)
from repro.types import BOOL, INT, REAL, STRING, ArrayType


class TestIntegerDivision:
    def test_truncates_toward_zero_positive(self):
        assert int_div(7, 2) == 3

    def test_truncates_toward_zero_negative(self):
        # C semantics, not Python floor division.
        assert int_div(-7, 2) == -3
        assert int_div(7, -2) == -3
        assert int_div(-7, -2) == 3

    def test_exact_division(self):
        assert int_div(10, 5) == 2

    def test_zero_divisor(self):
        with pytest.raises(TetraZeroDivisionError):
            int_div(1, 0)

    def test_mod_sign_follows_dividend(self):
        assert int_mod(7, 3) == 1
        assert int_mod(-7, 3) == -1
        assert int_mod(7, -3) == 1
        assert int_mod(-7, -3) == -1

    def test_div_mod_identity(self):
        for a in (-17, -5, 0, 5, 17):
            for b in (-4, -3, 3, 4):
                assert int_div(a, b) * b + int_mod(a, b) == a

    def test_mod_zero_divisor(self):
        with pytest.raises(TetraZeroDivisionError):
            int_mod(1, 0)


class TestRealArithmetic:
    def test_real_div(self):
        assert real_div(7.0, 2.0) == 3.5

    def test_real_div_zero(self):
        with pytest.raises(TetraZeroDivisionError):
            real_div(1.0, 0.0)

    def test_real_mod_fmod_semantics(self):
        assert real_mod(7.5, 2.0) == 1.5
        assert real_mod(-7.5, 2.0) == -1.5

    def test_pow_int_int_stays_int(self):
        result = tetra_pow(2, 10)
        assert result == 1024
        assert isinstance(result, int)

    def test_pow_negative_exponent_goes_real(self):
        result = tetra_pow(2, -1)
        assert result == 0.5
        assert isinstance(result, float)

    def test_pow_zero_to_negative(self):
        with pytest.raises(TetraZeroDivisionError):
            tetra_pow(0, -1)

    def test_pow_real(self):
        assert tetra_pow(2.0, 3) == 8.0
        assert isinstance(tetra_pow(2.0, 3), float)


class TestTetraArray:
    def test_len_and_iter(self):
        arr = TetraArray([1, 2, 3], INT)
        assert len(arr) == 3
        assert list(arr) == [1, 2, 3]

    def test_get_set(self):
        arr = TetraArray([1, 2], INT)
        arr.set(1, 9)
        assert arr.get(1) == 9

    def test_negative_index_rejected(self):
        # Unlike Python: no silent wraparound for beginners.
        arr = TetraArray([1, 2], INT)
        with pytest.raises(TetraIndexError, match="out of range"):
            arr.get(-1)

    def test_out_of_range(self):
        arr = TetraArray([1], INT)
        with pytest.raises(TetraIndexError, match="0 through 0"):
            arr.get(1)

    def test_structural_equality(self):
        assert TetraArray([1, 2], INT) == TetraArray([1, 2], INT)
        assert TetraArray([1], INT) != TetraArray([2], INT)

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(TetraArray([1], INT))

    def test_make_array_widens_to_real(self):
        arr = make_array([1, 2], REAL)
        assert arr.items == [1.0, 2.0]
        assert all(isinstance(x, float) for x in arr.items)

    def test_deep_copy_independent(self):
        inner = TetraArray([1], INT)
        outer = TetraArray([inner], ArrayType(INT))
        clone = deep_copy(outer)
        clone.get(0).set(0, 99)
        assert inner.get(0) == 1


class TestTypeOfValue:
    def test_primitives(self):
        assert type_of_value(1) == INT
        assert type_of_value(1.5) == REAL
        assert type_of_value("s") == STRING
        assert type_of_value(True) == BOOL  # bool before int

    def test_array(self):
        assert type_of_value(TetraArray([1], INT)) == ArrayType(INT)

    def test_unknown_value(self):
        with pytest.raises(TypeError):
            type_of_value(object())


class TestDisplay:
    def test_int(self):
        assert display(42) == "42"

    def test_real_uses_shortest_repr(self):
        assert display(1.5) == "1.5"
        assert display(1.0) == "1.0"

    def test_bool_lowercase(self):
        assert display(True) == "true"
        assert display(False) == "false"

    def test_string_plain(self):
        assert display("hi") == "hi"

    def test_array(self):
        assert display(TetraArray([1, 2], INT)) == "[1, 2]"

    def test_nested_array(self):
        inner = TetraArray([True], BOOL)
        assert display(TetraArray([inner], ArrayType(BOOL))) == "[[true]]"


class TestCoerce:
    def test_int_to_real(self):
        out = coerce_to(3, REAL)
        assert out == 3.0 and isinstance(out, float)

    def test_bool_not_widened(self):
        assert coerce_to(True, REAL) is True

    def test_no_op_cases(self):
        assert coerce_to(3, INT) == 3
        assert coerce_to("s", STRING) == "s"
