"""Property-based tests (hypothesis) on the core invariants.

* parse(unparse(e)) is structurally identical to e, for generated ASTs —
  pins the parser and unparser against each other over the whole grammar.
* The interpreter's arithmetic agrees with a independent Python oracle.
* int_div/int_mod satisfy the C identity on arbitrary operands.
* The lexer round-trips token text and never loses source positions.
* Machine-model makespans respect the Graham scheduling bounds for
  arbitrary fork/join trees, and are monotone in core count.
"""

import textwrap

from hypothesis import given, settings, strategies as st

from repro.api import run_source
from repro.lexer import TokenType, tokenize
from repro.parser import parse_expression, parse_source
from repro.tetra_ast import (
    ArrayLiteral,
    BinaryOp,
    BinOp,
    BoolLiteral,
    Expr,
    IntLiteral,
    Name,
    RealLiteral,
    StringLiteral,
    Unary,
    UnaryOp,
    node_equal,
    unparse,
)
from repro.runtime.cost import FREE_PARALLELISM
from repro.runtime.machine import Machine
from repro.runtime.taskgraph import Fork, Task, Work
from repro.runtime.values import int_div, int_mod


# ----------------------------------------------------------------------
# Expression AST strategies
# ----------------------------------------------------------------------
_names = st.sampled_from(["x", "y", "total", "n2", "value_"])

_int_expr_leaves = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(lambda v: IntLiteral(value=v)),
    _names.map(lambda n: Name(id=n)),
)

_arith_ops = st.sampled_from([
    BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV, BinaryOp.MOD,
    BinaryOp.POW,
])
_compare_ops = st.sampled_from([
    BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT, BinaryOp.LE, BinaryOp.GT,
    BinaryOp.GE,
])
_logic_ops = st.sampled_from([BinaryOp.AND, BinaryOp.OR])


def _exprs(children):
    return st.one_of(
        st.tuples(_arith_ops, children, children).map(
            lambda t: BinOp(op=t[0], left=t[1], right=t[2])
        ),
        st.tuples(_compare_ops, children, children).map(
            lambda t: BinOp(op=t[0], left=t[1], right=t[2])
        ),
        st.tuples(_logic_ops, children, children).map(
            lambda t: BinOp(op=t[0], left=t[1], right=t[2])
        ),
        children.map(lambda c: Unary(op=UnaryOp.NEG, operand=c)),
        children.map(lambda c: Unary(op=UnaryOp.NOT, operand=c)),
        st.lists(children, min_size=1, max_size=3).map(
            lambda es: ArrayLiteral(elements=es)
        ),
    )


expression_asts = st.recursive(
    st.one_of(
        _int_expr_leaves,
        st.booleans().map(lambda b: BoolLiteral(value=b)),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False).map(lambda v: RealLiteral(value=v)),
        st.text(alphabet=st.characters(codec="ascii",
                                       exclude_characters="\x00"),
                max_size=8).map(lambda s: StringLiteral(value=s)),
    ),
    _exprs,
    max_leaves=20,
)


class TestParseUnparseRoundTrip:
    @given(expression_asts)
    @settings(max_examples=300, deadline=None)
    def test_expression_round_trip(self, expr):
        text = unparse(expr)
        again = parse_expression(text)
        assert node_equal(expr, again), text

    @given(st.lists(expression_asts, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_statement_round_trip(self, exprs):
        body = "\n".join(f"    v{i} = {unparse(e)}" for i, e in enumerate(exprs))
        text = f"def main():\n{body}\n"
        program = parse_source(text)
        assert node_equal(program, parse_source(unparse(program)))


class TestArithmeticOracle:
    @given(st.integers(-10**9, 10**9), st.integers(-10**4, 10**4))
    @settings(max_examples=150, deadline=None)
    def test_int_div_mod_identity(self, a, b):
        if b == 0:
            return
        q, r = int_div(a, b), int_mod(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)
        # Truncation toward zero: quotient never overshoots.
        assert abs(q) == abs(a) // abs(b)

    @given(st.integers(-100, 100), st.integers(-100, 100),
           st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_interpreter_matches_python_on_int_arithmetic(self, a, b, c):
        # + - * over arbitrary ints agree with Python exactly.
        program = textwrap.dedent(f"""
            def main():
                print({a} + {b} * {c} - ({b} - {a}))
        """)
        expected = a + b * c - (b - a)
        assert run_source(program).output_lines() == [str(expected)]

    @given(st.integers(-50, 50), st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_interpreter_div_matches_c_semantics(self, a, b):
        program = f"def main():\n    print({a} / {b}, \" \", {a} % {b})\n"
        q = abs(a) // b * (1 if a >= 0 else -1)
        r = a - q * b
        assert run_source(program).output_lines() == [f"{q} {r}"]

    @given(st.booleans(), st.booleans(), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_boolean_algebra(self, p, q, r):
        lit = lambda v: "true" if v else "false"
        program = (
            "def main():\n"
            f"    print(({lit(p)} and {lit(q)}) or not {lit(r)})\n"
        )
        expected = "true" if (p and q) or not r else "false"
        assert run_source(program).output_lines() == [expected]


class TestLexerProperties:
    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_lexer_never_hangs_or_crashes_unexpectedly(self, text):
        from repro.errors import TetraError

        try:
            tokens = tokenize(text)
        except TetraError:
            return  # diagnostics are fine; crashes are not
        assert tokens[-1].type is TokenType.EOF

    @given(st.lists(st.sampled_from(
        ["x", "42", "4.25", '"s"', "+", "-", "(", ")", "[", "]",
         "while", "parallel", "==", "<=", "..."]), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_token_texts_match_source_slices(self, pieces):
        text = " ".join(pieces) + "\n"
        from repro.errors import TetraError

        try:
            tokens = tokenize(text)
        except TetraError:
            return
        for tok in tokens:
            if tok.type not in (TokenType.NEWLINE, TokenType.INDENT,
                                TokenType.DEDENT, TokenType.EOF):
                assert text[tok.span.start:tok.span.end] == tok.text


# ----------------------------------------------------------------------
# Machine model properties
# ----------------------------------------------------------------------
@st.composite
def task_trees(draw, depth=0):
    task = Task(draw(st.integers(0, 10**6)), "t")
    n_items = draw(st.integers(1, 3 if depth < 2 else 1))
    next_id = task.id
    for _ in range(n_items):
        kind = draw(st.sampled_from(
            ["work", "fork"] if depth < 2 else ["work"]))
        if kind == "work":
            task.items.append(Work(draw(st.integers(1, 100))))
        else:
            children = [draw(task_trees(depth=depth + 1))
                        for _ in range(draw(st.integers(1, 3)))]
            task.items.append(Fork(children, join=draw(st.booleans())))
    return task


def _renumber(root: Task) -> Task:
    for i, task in enumerate(root.walk()):
        task.id = i
    return root


class TestMachineProperties:
    @given(task_trees().map(_renumber), st.integers(1, 8))
    @settings(max_examples=120, deadline=None)
    def test_graham_bounds(self, root, cores):
        result = Machine(cores, FREE_PARALLELISM).run(root)
        work = root.subtree_work()
        assert result.makespan <= work + 1e-9
        assert result.makespan >= work / cores - 1e-9
        assert result.makespan >= root.critical_path() - 1e-9

    @given(task_trees().map(_renumber))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_cores(self, root):
        spans = [Machine(m, FREE_PARALLELISM).run(root).makespan
                 for m in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(spans, spans[1:]))

    @given(task_trees().map(_renumber), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, root, cores):
        a = Machine(cores, FREE_PARALLELISM).run(root).makespan
        b = Machine(cores, FREE_PARALLELISM).run(root).makespan
        assert a == b
