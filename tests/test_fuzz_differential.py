"""Differential fuzzing: generated programs through interpreter vs compiler.

Hypothesis builds random *well-typed, terminating, deterministic* Tetra
programs; each must produce byte-identical output through the tree-walking
interpreter and through the Tetra→Python compiler.  This is the strongest
guard against the two execution paths drifting apart, and it also fuzzes
the lexer/parser/checker along the way (every generated program must
compile cleanly — a checker rejection is a generator bug and fails loudly).
"""

import importlib.util
import textwrap

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import run_source
from repro.compiler import run_compiled
from repro.compiler.native import find_compiler
from repro.errors import TetraError

VARS = ["a", "b", "c"]


# ----------------------------------------------------------------------
# Expression generator (ints only — the richest operator set)
# ----------------------------------------------------------------------
def int_exprs(depth: int = 0):
    leaves = st.one_of(
        st.integers(-50, 50).map(lambda v: f"({v})" if v < 0 else str(v)),
        st.sampled_from(VARS),
    )
    if depth >= 2:
        return leaves

    def binop(children):
        # Division and modulo use non-zero literal divisors so the program
        # cannot fail at runtime (failures are tested elsewhere).
        safe_divisor = st.integers(1, 9)
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*"]), children, children)
            .map(lambda t: f"({t[1]} {t[0]} {t[2]})"),
            st.tuples(children, st.sampled_from(["/", "%"]), safe_divisor)
            .map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        )

    return st.one_of(leaves, binop(int_exprs(depth + 1)))


def conditions():
    op = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])
    return st.tuples(int_exprs(1), op, int_exprs(1)).map(
        lambda t: f"{t[0]} {t[1]} {t[2]}"
    )


# ----------------------------------------------------------------------
# Statement generator
# ----------------------------------------------------------------------
@st.composite
def statements(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "aug", "if", "for", "print"]
        if depth < 2 else ["assign", "aug", "print"]
    ))
    if kind == "assign":
        var = draw(st.sampled_from(VARS))
        return [f"{var} = {draw(int_exprs())}"]
    if kind == "aug":
        # Small literal operands: `a *= a` under nested loops squares its
        # way to astronomically large ints, which stress the bignum printer
        # rather than the language semantics under test here.
        var = draw(st.sampled_from(VARS))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return [f"{var} {op}= {draw(st.integers(1, 9))}"]
    if kind == "print":
        var = draw(st.sampled_from(VARS))
        return [f"print({var})"]
    if kind == "if":
        cond = draw(conditions())
        then = draw(blocks(depth + 1))
        orelse = draw(blocks(depth + 1))
        lines = [f"if {cond}:"] + [f"    {s}" for s in then]
        lines += ["else:"] + [f"    {s}" for s in orelse]
        return lines
    # bounded for loop
    var = draw(st.sampled_from(["i", "j"]))
    stop = draw(st.integers(1, 4))
    body = draw(blocks(depth + 1))
    return [f"for {var} in [1 ... {stop}]:"] + [f"    {s}" for s in body]


@st.composite
def blocks(draw, depth=0):
    stmts = draw(st.lists(statements(depth=depth), min_size=1, max_size=3))
    return [line for group in stmts for line in group]


@st.composite
def programs(draw):
    body = draw(blocks())
    lines = [f"{v} = {draw(st.integers(-5, 5))}" for v in VARS]
    lines += body
    lines += [f"print({v})" for v in VARS]
    indented = "\n".join(f"    {line}" for line in lines)
    return f"def main():\n{indented}\n"


@st.composite
def parallel_reduction_programs(draw):
    """Deterministic parallel programs: commutative lock-protected updates."""
    n = draw(st.integers(1, 30))
    term = draw(st.sampled_from(["i", "i * i", "i + 1", "1"]))
    workers = draw(st.integers(1, 6))
    return textwrap.dedent(f"""
        def main():
            total = 0
            parallel for i in [1 ... {n}]:
                lock total:
                    total += {term}
            print(total)
    """), workers


class TestDifferentialFuzz:
    @given(programs())
    @settings(max_examples=120, deadline=None)
    def test_sequential_programs_agree(self, text):
        interpreted = run_source(text, backend="sequential").output
        compiled = run_compiled(text).output
        assert interpreted == compiled, text

    @given(programs())
    @settings(max_examples=80, deadline=None)
    def test_fast_path_matches_tree_walker(self, text):
        """The closure fast path (the default pipeline, warm program
        cache) is byte-identical to the seed tree walker."""
        fast = run_source(text, backend="sequential").output
        walker = run_source(text, backend="sequential",
                            fast=False, cache=False).output
        assert fast == walker, text

    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_backends_agree_on_deterministic_programs(self, text):
        outputs = {
            run_source(text, backend=name).output
            for name in ("sequential", "thread", "sim")
        }
        assert len(outputs) == 1, text

    @given(parallel_reduction_programs())
    @settings(max_examples=25, deadline=None)
    def test_parallel_reductions_agree(self, case):
        text, workers = case
        from repro.runtime import RuntimeConfig

        config = RuntimeConfig(num_workers=workers)
        interpreted = run_source(text, backend="thread", config=config).output
        compiled = run_compiled(text, num_workers=workers).output
        sequential = run_source(text, backend="sequential").output
        assert interpreted == compiled == sequential, text

    @given(programs())
    @settings(max_examples=25, deadline=None)
    def test_proc_backend_matches_sequential_walker(self, text):
        """The process backend on the generated corpus.  These programs
        have no parallel constructs, so proc must behave exactly like its
        thread base; the point is exercising the full proc code path
        (backend construction, lifecycle, no stray offloads) against the
        sequential baseline."""
        from repro.runtime import RuntimeConfig

        sequential = run_source(text, backend="sequential").output
        proc = run_source(text, backend="proc",
                          config=RuntimeConfig(num_workers=2))
        assert proc.output == sequential, text

    @given(parallel_reduction_programs())
    @settings(max_examples=12, deadline=None)
    def test_proc_offload_matches_sequential_on_reductions(self, case):
        """Lock-protected `total += expr` is exactly what the proc backend
        offloads and merges arithmetically; outputs and exit codes must
        match the sequential walker.  (Programs whose loops use other
        shared mutation legitimately fall back to threads — the offload
        gate itself is covered in test_proc.py.)"""
        text, workers = case
        from repro.runtime import RuntimeConfig

        sequential = run_source(text, backend="sequential")
        proc = run_source(text, backend="proc",
                          config=RuntimeConfig(num_workers=min(workers, 4)),
                          on_error="return")
        assert proc.error is None, text
        assert proc.output == sequential.output, text

    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_formatting_preserves_meaning(self, text):
        """unparse(parse(p)) runs identically to p — `tetra fmt` is safe."""
        from repro.parser import parse_source
        from repro.tetra_ast import unparse

        formatted = unparse(parse_source(text))
        original = run_source(text, backend="sequential").output
        reformatted = run_source(formatted, backend="sequential").output
        assert original == reformatted, formatted


# ----------------------------------------------------------------------
# Native-tier fuzzing: the C lowering vs. the tree walker
# ----------------------------------------------------------------------
@st.composite
def native_statements(draw, depth=0):
    """Like :func:`statements`, but growth-bounded: native kernels do
    64-bit wraparound arithmetic (a documented lowering deviation), so
    the generator must keep every intermediate inside int64 — additive
    augmented assignments only, and products only of small leaves."""
    kind = draw(st.sampled_from(
        ["assign", "aug", "if", "for"]
        if depth < 2 else ["assign", "aug"]
    ))
    if kind == "assign":
        var = draw(st.sampled_from(VARS))
        return [f"{var} = {draw(int_exprs())}"]
    if kind == "aug":
        var = draw(st.sampled_from(VARS))
        op = draw(st.sampled_from(["+", "-"]))
        return [f"{var} {op}= {draw(st.integers(1, 9))}"]
    if kind == "if":
        cond = draw(conditions())
        then = draw(native_blocks(depth + 1))
        orelse = draw(native_blocks(depth + 1))
        lines = [f"if {cond}:"] + [f"    {s}" for s in then]
        lines += ["else:"] + [f"    {s}" for s in orelse]
        return lines
    var = draw(st.sampled_from(["i", "j"]))
    stop = draw(st.integers(1, 4))
    body = draw(native_blocks(depth + 1))
    return [f"for {var} in [1 ... {stop}]:"] + [f"    {s}" for s in body]


@st.composite
def native_blocks(draw, depth=0):
    groups = draw(st.lists(native_statements(depth=depth),
                           min_size=1, max_size=3))
    return [line for group in groups for line in group]


@st.composite
def native_function_programs(draw):
    """A numeric function (the native tier's lowering unit) plus a main
    that exercises it from several call sites."""
    body = draw(native_blocks())
    ret = draw(st.sampled_from(
        ["a + b + c", "a - c", "a * 2 + b", "c % 7 + a"]))
    fn = ["def kernel(a int, b int, c int) int:"]
    fn += [f"    {line}" for line in body]
    fn.append(f"    return {ret}")
    calls = draw(st.lists(
        st.tuples(st.integers(-20, 20), st.integers(-20, 20),
                  st.integers(-20, 20)),
        min_size=1, max_size=4))
    main = ["def main():"]
    main += [f"    print(kernel({a}, {b}, {c}))" for a, b, c in calls]
    return "\n".join(fn) + "\n\n" + "\n".join(main) + "\n"


@pytest.mark.skipif(
    find_compiler() is None
    or importlib.util.find_spec("cffi") is None,
    reason="no C toolchain (compiler + cffi) on this machine")
class TestNativeFuzz:
    @given(native_function_programs())
    @settings(max_examples=60, deadline=None)
    def test_native_functions_match_tree_walker(self, text):
        walker = run_source(text, native="off").output
        compiled = run_source(text, native="require").output
        assert walker == compiled, text

    @given(parallel_reduction_programs())
    @settings(max_examples=15, deadline=None)
    def test_native_parallel_reductions_match_walker(self, case):
        text, workers = case
        from repro.runtime import RuntimeConfig

        config = RuntimeConfig(num_workers=min(workers, 4))
        walker = run_source(text, config=config, native="off").output
        compiled = run_source(text, config=config, native="require").output
        assert walker == compiled, text
