"""Tests for the implemented future-work language features:

* associative arrays (``{K: V}`` types, ``{k: v}`` literals, dict builtins),
* explicitly typed declarations (``name type = value``),
* error handling (``try`` / ``catch`` and the ``error()`` builtin).

Each feature is exercised through the whole pipeline: checker accept/reject,
interpreter semantics (all backends), compiled-code differential, and
unparse round-trips.
"""

import textwrap

import pytest

from conftest import run
from repro.api import run_source
from repro.compiler import run_compiled
from repro.errors import (
    TetraDeadlockError,
    TetraIndexError,
    TetraRuntimeError,
    TetraTypeError,
)
from repro.parser import parse_source
from repro.tetra_ast import node_equal, unparse
from repro.types import DictType, INT, REAL, STRING, check_program, collect_diagnostics
from repro.source import SourceFile


def errors_of(text: str) -> list[str]:
    text = textwrap.dedent(text)
    source = SourceFile.from_string(text)
    return [e.message for e in collect_diagnostics(parse_source(source), source)]


def reject(text: str, match: str):
    msgs = errors_of(text)
    assert any(match in m for m in msgs), msgs


def accept(text: str):
    assert errors_of(text) == []


def differential(text: str):
    text = textwrap.dedent(text)
    interpreted = run_source(text).output
    compiled = run_compiled(text).output
    assert interpreted == compiled
    return interpreted


class TestDictChecker:
    def test_literal_type_inferred(self):
        source = SourceFile.from_string(
            'def main():\n    d = {"a": 1}\n'
        )
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("d").type == DictType(STRING, INT)

    def test_value_promotion(self):
        source = SourceFile.from_string(
            "def main():\n    d = {1: 1, 2: 2.5}\n"
        )
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("d").type == DictType(INT, REAL)

    def test_mixed_keys_rejected(self):
        reject('def main():\n    d = {1: 1, "a": 2}\n', "mixes int and string keys")

    def test_mixed_values_rejected(self):
        reject('def main():\n    d = {1: 1, 2: "x"}\n', "mixes int and string values")

    def test_bool_keys_rejected(self):
        reject("def main():\n    d = {true: 1}\n", "keys must be int or string")

    def test_real_keys_rejected_in_annotation(self):
        reject("def f(d {real: int}):\n    pass\n", "keys must be int or string")

    def test_empty_literal_needs_declaration(self):
        reject("def main():\n    d = {}\n", "empty dict literal")

    def test_index_key_type_checked(self):
        reject("""
            def main():
                d = {"a": 1}
                x = d[2]
        """, "keyed by string, not int")

    def test_index_result_type(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def main():
                d = {"a": 1.5}
                x = d["a"]
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("x").type == REAL

    def test_store_value_type_checked(self):
        reject("""
            def main():
                d = {"a": 1}
                d["b"] = "nope"
        """, "cannot store a string")

    def test_iteration_yields_keys(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def main():
                d = {1: "x"}
                for k in d:
                    y = k
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("k").type == INT

    def test_dict_equality_same_type(self):
        accept('def main():\n    b = {1: 2} == {1: 3}\n')

    def test_dict_param_and_return(self):
        accept("""
            def invert(d {string: int}) {string: int}:
                return d

            def main():
                print(invert({"a": 1}))
        """)


class TestDeclarations:
    def test_empty_array_via_declaration(self):
        assert run("""
            def main():
                xs [int] = []
                print(len(xs))
        """) == ["0"]

    def test_empty_dict_via_declaration(self):
        assert run("""
            def main():
                d {string: int} = {}
                d["k"] = 7
                print(d)
        """) == ["{k: 7}"]

    def test_declared_real_widens_int(self):
        assert run("""
            def main():
                x real = 3
                print(x)
        """) == ["3.0"]

    def test_declaration_type_mismatch(self):
        reject('def main():\n    x int = "s"\n', "declared as int")

    def test_redeclaration_rejected(self):
        reject("def main():\n    x = 1\n    x int = 2\n", "already defined")

    def test_empty_array_plain_assignment_still_rejected(self):
        reject("def main():\n    xs = []\n", "empty array literal")

    def test_reassign_empty_to_known_array(self):
        # Once the type is established, plain `xs = []` resets it.
        assert run("""
            def main():
                xs = [1, 2]
                xs = []
                print(len(xs))
        """) == ["0"]

    def test_nested_container_declaration(self):
        assert run("""
            def main():
                table {string: [int]} = {}
                table["row"] = [1, 2, 3]
                print(table["row"][1])
        """) == ["2"]

    def test_index_with_array_literal_still_parses(self):
        # The one grammar collision: IDENT '[' '[' must fall back to an
        # expression when it is not a declaration.
        assert run("""
            def main():
                x = array(3, 0)
                x[[1, 2][0]] = 9
                print(x)
        """) == ["[0, 9, 0]"]


class TestDictRuntime:
    def test_basic_operations(self, any_backend):
        assert run("""
            def main():
                d = {"b": 2, "a": 1}
                d["c"] = 3
                d["a"] = 10
                print(d)
                print(len(d), " ", d["a"])
        """, backend=any_backend) == ["{a: 10, b: 2, c: 3}", "3 10"]

    def test_iteration_sorted(self, any_backend):
        assert run("""
            def main():
                d = {3: "three", 1: "one", 2: "two"}
                for k in d:
                    print(k, " ", d[k])
        """, backend=any_backend) == ["1 one", "2 two", "3 three"]

    def test_missing_key_error(self):
        with pytest.raises(TetraIndexError, match="no key"):
            run("""
                def main():
                    d = {"a": 1}
                    print(d["b"])
            """)

    def test_keys_values(self):
        assert run("""
            def main():
                d = {"b": 2, "a": 1}
                print(keys(d), " ", values(d))
        """) == ["[a, b] [1, 2]"]

    def test_has_key_get_or(self):
        assert run("""
            def main():
                d = {"a": 1}
                print(has_key(d, "a"), " ", has_key(d, "z"))
                print(get_or(d, "a", 0), " ", get_or(d, "z", -1))
        """) == ["true false", "1 -1"]

    def test_remove_key(self):
        assert run("""
            def main():
                d = {"a": 1, "b": 2}
                remove_key(d, "a")
                print(d)
        """) == ["{b: 2}"]

    def test_remove_missing_key_error(self):
        with pytest.raises(TetraIndexError, match="cannot remove"):
            run("""
                def main():
                    d = {"a": 1}
                    remove_key(d, "z")
            """)

    def test_copy_is_deep(self):
        assert run("""
            def main():
                a = {"xs": [1]}
                b = copy(a)
                b["xs"][0] = 9
                print(a["xs"], " ", b["xs"])
        """) == ["[1] [9]"]

    def test_dicts_share_by_reference(self):
        assert run("""
            def bump(d {string: int}):
                d["n"] = d["n"] + 1

            def main():
                d = {"n": 1}
                bump(d)
                print(d["n"])
        """) == ["2"]

    def test_dict_equality(self):
        assert run("""
            def main():
                print({1: 2} == {1: 2}, " ", {1: 2} == {1: 3})
        """) == ["true false"]

    def test_augmented_dict_element(self):
        assert run("""
            def main():
                d = {"n": 10}
                d["n"] += 5
                print(d["n"])
        """) == ["15"]

    def test_word_count_pattern(self, any_backend):
        # The canonical dict workload.
        assert run("""
            def main():
                words = split("the cat and the hat and the bat", " ")
                counts {string: int} = {}
                for w in words:
                    counts[w] = get_or(counts, w, 0) + 1
                print(counts)
        """, backend=any_backend) == ["{and: 2, bat: 1, cat: 1, hat: 1, the: 3}"]

    def test_dict_shared_across_parallel_threads(self):
        assert run("""
            def main():
                d = {"a": 0, "b": 0}
                parallel:
                    d["a"] = 1
                    d["b"] = 2
                print(d)
        """) == ["{a: 1, b: 2}"]


class TestTryCatchChecker:
    def test_catch_variable_is_string(self):
        source = SourceFile.from_string(textwrap.dedent("""
            def main():
                try:
                    x = 1
                catch e:
                    y = e
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("e").type == STRING
        assert symbols.scope_of("main").lookup("y").type == STRING

    def test_catch_variable_conflict(self):
        reject("""
            def main():
                e = 5
                try:
                    x = 1
                catch e:
                    pass
        """, "already inferred as int")

    def test_try_without_catch_rejected(self):
        from repro.errors import TetraSyntaxError

        with pytest.raises(TetraSyntaxError, match="catch"):
            parse_source("def main():\n    try:\n        pass\n")

    def test_all_paths_return_through_try(self):
        accept("""
            def f() int:
                try:
                    return 1
                catch e:
                    return 2
        """)

    def test_try_body_alone_does_not_guarantee_return(self):
        reject("""
            def f() int:
                try:
                    return 1
                catch e:
                    x = 1
        """, "not every path")


class TestTryCatchRuntime:
    def test_catches_index_error(self, any_backend):
        assert run("""
            def main():
                xs = [1]
                try:
                    print(xs[5])
                catch e:
                    print("caught")
        """, backend=any_backend) == ["caught"]

    def test_catches_division_by_zero(self):
        assert run("""
            def main():
                z = 0
                try:
                    print(1 / z)
                catch e:
                    print(e)
        """) == ["integer division by zero"]

    def test_catches_user_error(self):
        assert run("""
            def main():
                try:
                    error("custom problem")
                catch e:
                    print("got: ", e)
        """) == ["got: custom problem"]

    def test_catches_assertion(self):
        assert run("""
            def main():
                try:
                    assert(false, "invariant broke")
                catch e:
                    print(e)
        """) == ["invariant broke"]

    def test_error_propagates_through_calls(self):
        assert run("""
            def deep(n int) int:
                if n == 0:
                    error("bottom")
                return deep(n - 1)

            def main():
                try:
                    print(deep(5))
                catch e:
                    print(e)
        """) == ["bottom"]

    def test_no_error_skips_handler(self):
        assert run("""
            def main():
                try:
                    print("fine")
                catch e:
                    print("never")
                print("after")
        """) == ["fine", "after"]

    def test_nested_try(self):
        assert run("""
            def main():
                try:
                    try:
                        error("inner")
                    catch a:
                        print("inner caught: ", a)
                        error("outer")
                catch b:
                    print("outer caught: ", b)
        """) == ["inner caught: inner", "outer caught: outer"]

    def test_uncaught_after_handler_runs(self):
        with pytest.raises(TetraRuntimeError, match="second"):
            run("""
                def main():
                    try:
                        error("first")
                    catch e:
                        error("second")
            """)

    def test_deadlock_not_catchable(self):
        # A deadlock diagnostic must never be swallowed by a student's try.
        with pytest.raises(TetraDeadlockError):
            run("""
                def main():
                    try:
                        lock a:
                            lock a:
                                pass
                    catch e:
                        print("should not catch this")
            """)

    def test_lock_released_when_error_escapes(self):
        assert run("""
            def risky():
                lock gate:
                    error("inside lock")

            def main():
                try:
                    risky()
                catch e:
                    pass
                lock gate:
                    print("lock was released")
        """) == ["lock was released"]

    def test_try_in_parallel_thread(self):
        assert run("""
            def main():
                parallel:
                    guard(1)
                    guard(0)

            def guard(n int):
                try:
                    print(10 / n)
                catch e:
                    print("division guarded")
        """, backend="sequential") == ["10", "division guarded"]


class TestCompiledExtensions:
    def test_dict_differential(self):
        differential("""
            def main():
                d = {"b": 2, "a": 1}
                d["c"] = 3
                remove_key(d, "b")
                print(d, " ", keys(d), " ", len(d))
                for k in d:
                    print(k, " -> ", d[k])
                print(get_or(d, "zz", -1), " ", has_key(d, "a"))
        """)

    def test_declaration_differential(self):
        differential("""
            def main():
                xs [real] = []
                d {int: string} = {}
                d[1] = "one"
                x real = 2
                print(len(xs), " ", d, " ", x)
        """)

    def test_try_catch_differential(self):
        differential("""
            def main():
                try:
                    xs = [1]
                    print(xs[9])
                catch e:
                    print("handled: ", e)
                try:
                    error("direct")
                catch e:
                    print(e)
        """)

    def test_word_count_differential(self):
        differential("""
            def main():
                counts {string: int} = {}
                for w in split("a b a c b a", " "):
                    counts[w] = get_or(counts, w, 0) + 1
                print(counts)
        """)


class TestUnparseExtensions:
    @pytest.mark.parametrize("text", [
        'def main():\n    d {string: int} = {}\n',
        'def main():\n    d = {1: "a", 2: "b"}\n',
        'def main():\n    xs [[real]] = []\n',
        ('def main():\n    try:\n        x = 1\n'
         '    catch e:\n        print(e)\n'),
        'def f(d {int: [string]}) {string: bool}:\n    return {"k": true}\n',
    ])
    def test_round_trip(self, text):
        program = parse_source(text)
        assert node_equal(program, parse_source(unparse(program)))
