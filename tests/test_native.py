"""The native compiled tier: Tetra→C kernels (``repro.compiler.native``).

Three groups:

* toolchain-free tests (eligibility decisions, mode gating, the
  program-cache key, graceful degradation without a C compiler) — these
  run everywhere, including CI boxes with no ``cc``;
* differential tests (walker vs. native on the same program, including
  error messages, reductions under every chunking policy, and the
  observability surface) — skipped when no compiler is present;
* artifact-cache tests (reuse across runs, corrupt-file recovery).
"""

from __future__ import annotations

import importlib.util
import os
import textwrap
import time

import pytest

import repro.compiler.native as native
from repro.api import (
    cached_program,
    clear_program_cache,
    program_cache_info,
    run_source,
)
from repro.errors import TetraLimitError, TetraNativeError
from repro.runtime.backend import RuntimeConfig

HAS_CFFI = importlib.util.find_spec("cffi") is not None
HAS_CC = native.find_compiler() is not None
needs_cc = pytest.mark.skipif(
    not (HAS_CC and HAS_CFFI),
    reason="no C toolchain (compiler + cffi) on this machine")
needs_cffi = pytest.mark.skipif(
    not HAS_CFFI, reason="cffi is not installed")


@pytest.fixture(autouse=True)
def native_sandbox(tmp_path, monkeypatch):
    """Isolate every test: its own artifact-cache dir, a cold program
    cache, and no shared in-memory native modules."""
    monkeypatch.setenv("TETRA_NATIVE_CACHE", str(tmp_path / "native-cache"))
    clear_program_cache()
    native._reset_for_tests()
    yield
    clear_program_cache()
    native._reset_for_tests()


def run(text, native_mode="require", **kwargs):
    return run_source(textwrap.dedent(text), native=native_mode, **kwargs)


def differential(text, num_workers=None, chunking=None, **kwargs):
    """Run dedented source on the walker and the native tier; both must
    agree on output (or raise the same rendered error)."""
    text = textwrap.dedent(text)
    if num_workers is not None or chunking is not None:
        kwargs["config"] = RuntimeConfig(
            num_workers=num_workers, chunking=chunking or "block")

    def one(mode):
        try:
            return ("ok", run_source(text, native=mode, **kwargs).output)
        except Exception as exc:  # noqa: BLE001 — compared, not hidden
            return ("err", f"{type(exc).__name__}: {exc}")

    walker = one("off")
    compiled = one("require")
    assert walker == compiled, (
        f"walker and native tier disagree:\n  walker: {walker}"
        f"\n  native: {compiled}")
    return walker


# ----------------------------------------------------------------------
# Toolchain-free: modes, gating, and the program-cache key
# ----------------------------------------------------------------------
class TestModes:
    def test_native_is_off_by_default(self):
        result = run_source("def main():\n    print(1 + 1)\n", metrics=True)
        assert result.metrics.native is None

    def test_invalid_mode_is_rejected(self):
        with pytest.raises(ValueError):
            run_source("def main():\n    print(1)\n", native="fast")
        with pytest.raises(ValueError):
            RuntimeConfig(native="yes")

    @needs_cffi
    def test_auto_without_a_toolchain_degrades_with_a_notice(
            self, monkeypatch):
        monkeypatch.setattr(native, "find_compiler", lambda: None)
        result = run_source("def main():\n    print(6 * 7)\n",
                            native="auto", metrics=True)
        assert result.output == "42\n"
        info = result.metrics.native
        assert info is not None and not info["enabled"]
        assert "no C compiler" in info["notice"]
        assert "no C compiler" in result.metrics.render()

    @needs_cffi
    def test_require_without_a_toolchain_raises(self, monkeypatch):
        monkeypatch.setattr(native, "find_compiler", lambda: None)
        with pytest.raises(TetraNativeError, match="no C compiler"):
            run_source("def main():\n    print(1)\n", native="require")

    def test_require_with_race_detection_raises(self):
        # detect_races rewrites every shared access; compiled kernels
        # would run unobserved, so the tier refuses the combination.
        with pytest.raises(TetraNativeError, match="race detection"):
            run_source("def main():\n    print(1)\n",
                       native="require", detect_races=True)

    def test_auto_with_race_detection_falls_back_silently(self):
        result = run_source("def main():\n    print(1)\n",
                            native="auto", detect_races=True, metrics=True)
        assert result.output == "1\n"
        assert not result.metrics.native["enabled"]

    def test_program_cache_key_includes_the_native_flag(self):
        """Regression: native runs annotate the tree (loop kernels) and
        swap function invokers, so a tree compiled for a plain run must
        never be served to a native run or vice versa."""
        src = "def main():\n    print(3)\n"
        assert run_source(src).output == "3\n"
        assert run_source(src, native="auto").output == "3\n"
        info = program_cache_info()
        assert info["misses"] == 2 and info["hits"] == 0
        # ...but two native runs share one variant.
        assert run_source(src, native="auto").output == "3\n"
        assert program_cache_info()["hits"] == 1


# ----------------------------------------------------------------------
# Toolchain-free: eligibility (lower_program never invokes a compiler)
# ----------------------------------------------------------------------
ELIGIBILITY = """
def square(x int) int:
    return x * x

def fact(n int) int:
    if n <= 1:
        return 1
    return n * fact(n - 1)

def greet(name string) string:
    return name

def local_array(n int) int:
    xs = [0 ... n]
    return len(xs)

def shout(x int):
    print(x)

def main():
    print(square(4))
"""


class TestEligibility:
    def lowering(self, text):
        program, _source = cached_program(textwrap.dedent(text))
        return native.lower_program(program, program.symbols)

    def test_numeric_functions_lower_and_others_report_why(self):
        low = self.lowering(ELIGIBILITY)
        assert "square" in low.functions
        reasons = {r for _line, r in low.fallbacks}
        assert any("recursion" in r for r in reasons)
        assert any("greet" in r for r in reasons)
        assert any("local_array" in r for r in reasons)
        assert any("print" in r for r in reasons)

    def test_mutual_recursion_is_rejected(self):
        low = self.lowering("""
        def even(n int) bool:
            if n == 0:
                return true
            return odd(n - 1)

        def odd(n int) bool:
            if n == 0:
                return false
            return even(n - 1)

        def main():
            print(even(10))
        """)
        assert not low.functions
        cycle_reasons = [r for _line, r in low.fallbacks
                         if "'even'" in r or "'odd'" in r]
        assert cycle_reasons
        assert all("recursion" in r for r in cycle_reasons)

    def test_reduction_loop_plans_into_a_kernel(self):
        low = self.lowering("""
        def main():
            total = 0
            parallel for i in [1 ... 100]:
                lock t:
                    total += i
            print(total)
        """)
        assert len(low.loops) == 1
        _node, meta = low.loops[0]
        assert [(n, op) for n, op, _ty in meta.reductions] == \
            [("total", "sum")]

    def test_non_reduction_scalar_write_is_rejected(self):
        low = self.lowering("""
        def main():
            last = 0
            parallel for i in [1 ... 10]:
                last = i
            print(last)
        """)
        assert not low.loops
        assert low.fallbacks

    def test_lowering_is_deterministic(self):
        a = self.lowering(ELIGIBILITY)
        clear_program_cache()
        b = self.lowering(ELIGIBILITY)
        assert a.c_source == b.c_source and a.key == b.key


# ----------------------------------------------------------------------
# Differential: walker vs. native on real programs
# ----------------------------------------------------------------------
@needs_cc
class TestDifferential:
    def test_scalar_math_and_control_flow(self):
        kind, out = differential("""
        def collatz_len(n int) int:
            steps = 0
            while n != 1:
                if n % 2 == 0:
                    n = n / 2
                else:
                    n = 3 * n + 1
                steps += 1
            return steps

        def main():
            total = 0
            for n in [1 ... 50]:
                total += collatz_len(n)
            print(total)
        """)
        assert kind == "ok"

    def test_real_arithmetic_and_builtins(self):
        kind, _ = differential("""
        def norm(xs [real]) real:
            total = 0.0
            i = 0
            while i < len(xs):
                total += xs[i] * xs[i]
                i += 1
            return sqrt(total)

        def main():
            xs = [3.0, -4.0, 12.0]
            print(norm(xs))
            print(floor(-2.5))
            print(ceil(2.25))
            print(round(7.5))
            print(abs(-9))
            print(min(3, 11))
            print(max(2.5, -8.0))
        """)
        assert kind == "ok"

    def test_functions_mutate_arrays_in_place(self):
        differential("""
        def double_all(xs [int]):
            i = 0
            while i < len(xs):
                xs[i] = xs[i] * 2
                i += 1

        def main():
            xs = [1, 2, 3, 4]
            double_all(xs)
            print(xs[0])
            print(xs[3])
        """)

    def test_bool_parameters_and_returns(self):
        differential("""
        def both(a bool, b bool) bool:
            return a and b

        def main():
            print(both(true, true))
            print(both(true, false))
        """)

    def test_runtime_errors_render_identically(self):
        for snippet in [
            "print(10 / den)",          # integer division by zero
            "print(10 % den)",          # integer modulo by zero
            "print(xs[7])",             # index out of range
        ]:
            kind, message = differential(f"""
            def main():
                den = 0
                xs = [1, 2, 3]
                {snippet}
            """)
            assert kind == "err", message

    def test_huge_arguments_fall_back_to_python(self):
        # 2**70 does not fit the C ABI; the invoker must delegate to the
        # fast path rather than truncate.
        kind, out = differential("""
        def half(x int) int:
            return x / 2

        def main():
            big = 1
            for i in [1 ... 70]:
                big = big * 2
            print(half(big))
        """)
        assert kind == "ok" and out == f"{2 ** 69}\n"

    @pytest.mark.parametrize("chunking", ["block", "cyclic", "dynamic"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_sum_reduction_across_policies(self, chunking, workers):
        cfg = dict(num_workers=workers, chunking=chunking)
        kind, out = differential("""
        def main():
            total = 0
            parallel for i in [1 ... 500]:
                lock t:
                    total += i * i
            print(total)
        """, **cfg)
        assert kind == "ok"
        assert out == f"{sum(i * i for i in range(1, 501))}\n"

    def test_min_max_reductions(self):
        kind, out = differential("""
        def main():
            lo = 1000000
            hi = -1000000
            parallel for n in [13, 2, 88, -5, 41, 7]:
                lock m:
                    if n < lo:
                        lo = n
                    if n > hi:
                        hi = n
            print(lo)
            print(hi)
        """, num_workers=3)
        assert kind == "ok" and out == "-5\n88\n"

    def test_parallel_array_writes_merge(self):
        kind, out = differential("""
        def main():
            out = [0 ... 63]
            parallel for i in [0 ... 63]:
                out[i] = i * i
            total = 0
            for i in [0 ... 63]:
                total += out[i]
            print(total)
        """, num_workers=4)
        assert kind == "ok"
        assert out == f"{sum(i * i for i in range(64))}\n"

    def test_native_calls_inside_parallel_kernels(self):
        kind, out = differential("""
        def is_prime(n int) bool:
            if n < 2:
                return false
            d = 2
            while d * d <= n:
                if n % d == 0:
                    return false
                d += 1
            return true

        def main():
            count = 0
            parallel for n in [2 ... 1000]:
                if is_prime(n):
                    lock c:
                        count += 1
            print(count)
        """, num_workers=2)
        assert kind == "ok" and out == "168\n"


# ----------------------------------------------------------------------
# Observability, limits, and fallback reporting
# ----------------------------------------------------------------------
@needs_cc
class TestRuntimeSurface:
    def test_metrics_report_the_native_tier(self):
        result = run("""
        def twice(x int) int:
            return x * 2

        def main():
            print(twice(21))
        """, metrics=True)
        info = result.metrics.native
        assert info["enabled"] and "twice" in info["functions"]
        assert info["calls"] == 1
        panel = result.metrics.render()
        assert "native tier" in panel

    def test_fallback_reasons_carry_line_numbers(self):
        result = run("""
        def fact(n int) int:
            if n <= 1:
                return 1
            return n * fact(n - 1)

        def main():
            print(fact(10))
        """, metrics=True)
        fallbacks = dict(result.metrics.native["fallbacks"])
        assert any("recursion" in why for why in fallbacks.values())
        assert all(isinstance(line, int) and line > 0 for line in fallbacks)

    def test_time_limit_interrupts_a_hot_native_loop(self):
        started = time.perf_counter()
        with pytest.raises(TetraLimitError):
            run("""
            def spin(n int) int:
                total = 0
                i = 0
                while i < n:
                    total += i % 7
                    i += 1
                return total

            def main():
                print(spin(4000000000))
            """, time_limit=0.4)
        # The kernel checks in every 1024 back-edges; well under the
        # seconds the full 4e9-iteration loop would take.
        assert time.perf_counter() - started < 5.0

    def test_trace_labels_native_calls(self):
        result = run("""
        def cube(x int) int:
            return x * x * x

        def main():
            print(cube(3))
        """, trace=True)
        assert result.output.startswith("27") or "27" in result.output


# ----------------------------------------------------------------------
# The on-disk artifact cache
# ----------------------------------------------------------------------
@needs_cc
class TestArtifactCache:
    SRC = """
    def add(a int, b int) int:
        return a + b

    def main():
        print(add(40, 2))
    """

    def test_second_run_hits_the_artifact_cache(self):
        first = run(self.SRC, metrics=True)
        assert first.metrics.native["cache_hit"] is False
        # A fresh process would re-dlopen from disk; simulate by dropping
        # the in-memory module table (and the program cache, so lowering
        # re-runs too).
        clear_program_cache()
        native._reset_for_tests()
        second = run(self.SRC, metrics=True)
        assert second.metrics.native["cache_hit"] is True
        assert second.output == "42\n"

    def test_corrupt_artifact_triggers_a_cold_rebuild(self):
        run(self.SRC)
        cache = native.cache_dir()
        sos = [f for f in os.listdir(cache) if f.endswith(".so")]
        assert len(sos) == 1
        # Replace through a new inode (the writer's own crash-atomic
        # idiom): scribbling on the existing file in place would corrupt
        # the mapping this process already dlopened.
        junk = os.path.join(cache, "junk.tmp")
        with open(junk, "wb") as fh:
            fh.write(b"not an ELF object")
        os.replace(junk, os.path.join(cache, sos[0]))
        clear_program_cache()
        native._reset_for_tests()
        result = run(self.SRC, metrics=True)
        assert result.output == "42\n"
        assert result.metrics.native["cache_hit"] is False

    def test_cache_dir_override_is_honored(self, tmp_path):
        run(self.SRC)
        override = os.environ["TETRA_NATIVE_CACHE"]
        assert os.path.isdir(override)
        assert any(f.endswith(".so") for f in os.listdir(override))
