"""Schedule record/replay: any run becomes a reproducible artifact.

The contract under test (DESIGN.md §6g): recording a run on *any*
backend — including a chaos-jittered thread run — produces a versioned
``tetra-schedule/1`` artifact that replays **byte-identically** on the
coop scheduler: same output, same race fingerprints, same injected
thread faults, same final status.  Plus the supporting cast: artifact
validation errors that name the file and field, stress-harness artifact
persistence, unique spawn labels, and the CLI surface.
"""

import json

import pytest

from repro import run_source
from repro.errors import TetraError
from repro.resilience import FaultPlan, run_stress
from repro.runtime import RuntimeConfig
from repro.runtime.schedule import (
    SCHEDULE_FORMAT,
    Schedule,
    load_schedule,
    parse_schedule,
    race_fingerprints,
    replay_schedule,
    save_schedule,
)
from repro.tools.cli import main

# A racy accumulator whose read-modify-write spans two statements, so
# the schedule decides which updates are lost: the printed total and the
# detector's findings vary seed to seed — exactly what the artifact must
# pin down.  (A single-statement `total = total + i` would be atomic at
# the recorder's statement granularity and always print 111.)
RACY = """
def main():
    total = 0
    parallel for i in [1, 10, 100]:
        seen = total
        total = seen + i
    print(total)
"""

# Classic ABBA: whether it deadlocks (and what printed first) depends on
# the interleaving.
ABBA = """
def main():
    parallel:
        lock a:
            print("t1 has a")
            lock b:
                print("t1 has both")
        lock b:
            print("t2 has b")
            lock a:
                print("t2 has both")
"""

PFOR = """
def main():
    nums = array(20, 0)
    parallel for i in [0 ... 19]:
        nums[i] = i * i
    total = 0
    for i in [0 ... 19]:
        total = total + nums[i]
    print(total)
"""


def record(text, backend, seed=None, workers=4, races=True, **kwargs):
    return run_source(
        text, backend=backend, chaos_seed=seed,
        config=RuntimeConfig(num_workers=workers),
        detect_races=races, record_schedule=True,
        on_error="return", **kwargs,
    )


def assert_faithful(recorded, replayed):
    report = replayed.replay
    assert report.output_match, (
        f"output diverged: {replayed.output!r} vs "
        f"{recorded.output!r}"
    )
    assert report.races_match
    assert report.faults_match
    assert report.status_match
    assert report.faithful


class TestThreadToCoop:
    def test_ten_seeds_byte_identical(self):
        """The acceptance bar: ten chaos seeds recorded on the real-thread
        backend each replay byte-identically on coop — output, race
        fingerprints, fault counts, and status all match."""
        outputs = set()
        for seed in range(10):
            rec = record(RACY, "thread", seed=seed)
            assert rec.schedule is not None
            assert rec.schedule["format"] == SCHEDULE_FORMAT
            rep = replay_schedule(rec.schedule)
            assert_faithful(rec, rep)
            assert rep.output == rec.output
            assert race_fingerprints(rep.races) == \
                race_fingerprints(rec.races)
            outputs.add(rec.output)
        # The program is genuinely racy: the seeds must not all agree
        # (otherwise this test proves nothing about pinning schedules).
        assert len(outputs) > 1

    def test_thread_fault_reinjection(self):
        """Injected thread faults are drawn per spawn label, so a replay
        kills the same threads the recording killed."""
        plan = FaultPlan(3, thread_fault_prob=0.6)
        rec = run_source(
            RACY, backend="thread", detect_races=True,
            config=RuntimeConfig(num_workers=4, fault_plan=plan,
                                 chaos_seed=3),
            record_schedule=True, on_error="return",
        )
        want = rec.fault_counts.get("thread-fault", 0)
        assert want > 0, "seed 3 at prob 0.6 should kill someone"
        rep = replay_schedule(rec.schedule)
        assert rep.fault_counts.get("thread-fault", 0) == want
        assert_faithful(rec, rep)

    def test_deadlock_replays(self):
        """A recorded deadlock replays as the same deadlock — same output
        before the cycle, same aborted status."""
        seen_deadlock = False
        for seed in range(6):
            rec = record(ABBA, "thread", seed=seed, races=False)
            rep = replay_schedule(rec.schedule)
            assert_faithful(rec, rep)
            if rec.aborted_by == "deadlock":
                seen_deadlock = True
                assert rep.aborted_by == "deadlock"
        # Which seeds deadlock varies with OS timing, but across six
        # chaos seeds at least one ABBA cycle reliably closes.
        assert seen_deadlock, "no seed in 0..5 deadlocked ABBA"


class TestOtherBackends:
    def test_coop_chaos_fixed_point(self):
        """Recording a coop replay of a coop recording reproduces the
        exact turn and grant sequences: replay is a fixed point."""
        rec = record(RACY, "coop", seed=5)
        rep = replay_schedule(rec.schedule, record_schedule=True)
        assert_faithful(rec, rep)
        assert rep.schedule["turns"] == rec.schedule["turns"]
        assert rep.schedule["lock_grants"] == rec.schedule["lock_grants"]

    @pytest.mark.parametrize("backend", ["sequential", "sim"])
    def test_deterministic_backends(self, backend):
        rec = record(PFOR, backend, races=False)
        assert rec.schedule["backend"] == backend
        rep = replay_schedule(rec.schedule)
        assert_faithful(rec, rep)
        assert rep.output == "2470\n"

    def test_proc_offload(self):
        """A proc recording notes the offloaded parallel-for shape; the
        replay reproduces the same partitioning in-process."""
        rec = record(PFOR, "proc", races=False)
        assert rec.output == "2470\n"
        pfors = rec.schedule["parallel_fors"]
        assert pfors and all("workers" in p for p in pfors)
        rep = replay_schedule(rec.schedule)
        assert_faithful(rec, rep)


class TestArtifactValidation:
    def good(self):
        return record(RACY, "coop", seed=1).schedule

    def test_round_trips_through_disk(self, tmp_path):
        path = str(tmp_path / "s.schedule.json")
        save_schedule(self.good(), path)
        schedule = load_schedule(path)
        assert schedule.path == path
        rep = replay_schedule(schedule)
        assert rep.replay.faithful

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(TetraError, match="not valid JSON"):
            load_schedule(str(path))

    def test_not_a_schedule_file(self):
        with pytest.raises(TetraError, match="not a Tetra schedule"):
            parse_schedule({"something": "else"}, "x.json")

    def test_version_skew_names_newer_build(self):
        data = dict(self.good(), format="tetra-schedule/99")
        with pytest.raises(TetraError, match="newer Tetra"):
            parse_schedule(data, "future.json")

    def test_missing_field_names_file_and_field(self):
        data = self.good()
        del data["turns"]
        with pytest.raises(TetraError,
                           match=r"broken\.json.*missing field 'turns'"):
            parse_schedule(data, "broken.json")

    def test_wrong_field_type_names_field(self):
        data = dict(self.good(), lock_grants=[["guard"]])
        with pytest.raises(TetraError, match="lock_grants"):
            parse_schedule(data, "broken.json")

    def test_truncated_refuses_replay(self):
        data = dict(self.good(), truncated=True)
        with pytest.raises(TetraError, match="truncated"):
            parse_schedule(data, "partial.json")


class TestSpawnLabels:
    def test_respawn_labels_are_unique(self):
        """Spawning from the same source line twice yields distinct labels
        (' #2' suffix), so label-keyed turns and fault draws never
        collide across loop iterations."""
        rec = record(
            """
def main():
    for round in [1 ... 2]:
        parallel:
            print("a")
            print("b")
""",
            "coop", races=False,
        )
        turns = rec.schedule["turns"]
        labels = {t for t in turns if t != "main thread"}
        base = {t for t in labels if "#" not in t}
        again = {t for t in labels if "#2" in t}
        assert len(base) == 2
        assert len(again) == 2
        rep = replay_schedule(rec.schedule)
        assert rep.replay.faithful


class TestStressArtifacts:
    def test_failing_seeds_persist_schedules(self, tmp_path):
        art = str(tmp_path / "artifacts")
        report = run_stress(
            ABBA, name="abba.ttr", seeds=4,
            backends=("thread", "coop"), detect_races=False,
            artifact_dir=art,
        )
        bad = [o for o in report.outcomes if not o.clean]
        assert bad, "ABBA under chaos should fail somewhere in 8 cells"
        for outcome in bad:
            assert outcome.schedule_path, (
                f"{outcome.backend}/{outcome.seed} failed without an "
                "artifact"
            )
            rep = replay_schedule(outcome.schedule_path)
            assert rep.replay.faithful
            assert (rep.aborted_by or "ok") == outcome.status
        rendered = report.render()
        assert "tetra replay " in rendered

    def test_clean_matrix_persists_nothing(self, tmp_path):
        art = tmp_path / "artifacts"
        report = run_stress(
            'def main():\n    print("steady")\n',
            seeds=2, backends=("coop",), detect_races=False,
            artifact_dir=str(art),
        )
        assert report.findings == 0
        assert not art.exists()


class TestDebuggerReplay:
    def test_stepping_a_recording(self, tmp_path):
        from repro.ide.debugger import DebugSession

        # The OS still picks who wins the turnstile token, so which seed
        # deadlocks varies run to run — scan for one that did.
        rec = None
        for seed in range(12):
            cand = record(ABBA, "thread", seed=seed, races=False)
            if cand.aborted_by == "deadlock":
                rec = cand
                break
        assert rec is not None, "no seed in 0..11 deadlocked ABBA"
        path = str(tmp_path / "dl.schedule.json")
        save_schedule(rec.schedule, path)
        session = DebugSession(replay=path)
        assert session.schedule is not None
        session.start()
        assert session.replay_pending == len(rec.schedule["turns"])
        with pytest.raises(TetraError, match="deadlock"):
            while session.replay_pending and not session.finished:
                session.replay_step()
        assert session.output == rec.output

    def test_tui_replay_session(self, tmp_path):
        import io

        from repro.ide.tui import DebuggerTUI

        rec = record(RACY, "coop", seed=4, races=False)
        path = str(tmp_path / "racy.schedule.json")
        save_schedule(rec.schedule, path)
        turns = len(rec.schedule["turns"])
        out = io.StringIO()
        tui = DebuggerTUI(stdin=io.StringIO(f"rs {turns}\noutput\nquit\n"),
                          stdout=out, replay=path)
        tui.repl()
        text = out.getvalue()
        assert "program finished" in text
        assert rec.output.strip() in text

    def test_live_session_rejects_replay_step(self):
        from repro.ide.debugger import DebugSession

        session = DebugSession('def main():\n    print("x")\n')
        with pytest.raises(TetraError, match="not replaying"):
            session.replay_step()


class TestCLI:
    def test_record_then_replay(self, tmp_path, capsys):
        prog = tmp_path / "racy.ttr"
        prog.write_text(RACY)
        artifact = str(tmp_path / "racy.schedule.json")
        code = main(["run", str(prog), "--workers", "4",
                     "--chaos", "7", "--record-schedule", artifact])
        out = capsys.readouterr()
        assert code == 0
        assert "schedule recorded to" in out.err
        data = json.loads(open(artifact).read())
        assert data["format"] == SCHEDULE_FORMAT
        assert data["recorded"]["output"] == out.out

        code = main(["replay", artifact])
        replay_out = capsys.readouterr()
        assert code == 0
        assert replay_out.out == out.out
        assert "byte-identical" in replay_out.err

    def test_replay_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.schedule.json"
        bad.write_text('{"format": "tetra-schedule/99"}')
        code = main(["replay", str(bad)])
        err = capsys.readouterr().err
        assert code != 0
        assert "newer Tetra" in err

    def test_stress_artifacts_flag(self, tmp_path, capsys):
        prog = tmp_path / "abba.ttr"
        prog.write_text(ABBA)
        art = tmp_path / "schedules"
        main(["stress", str(prog), "--seeds", "3",
              "--backends", "coop", "--no-races",
              "--artifacts", str(art)])
        out = capsys.readouterr().out
        assert "tetra replay " in out
        files = list(art.glob("*.schedule.json"))
        assert files
        schedule = load_schedule(str(files[0]))
        assert isinstance(schedule, Schedule)
