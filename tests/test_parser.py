"""Unit tests for the recursive-descent parser: shapes and diagnostics."""

import textwrap

import pytest

from repro.errors import TetraSyntaxError
from repro.parser import parse_expression, parse_source
from repro.tetra_ast import (
    ArrayLiteral,
    ArrayTypeExpr,
    Assign,
    AugAssign,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    BoolLiteral,
    Break,
    Call,
    Continue,
    ExprStmt,
    For,
    If,
    Index,
    IntLiteral,
    LockStmt,
    Name,
    ParallelBlock,
    ParallelFor,
    Pass,
    PrimitiveTypeExpr,
    RangeLiteral,
    RealLiteral,
    Return,
    StringLiteral,
    Unary,
    UnaryOp,
    While,
)


def parse_fn(body: str, header: str = "def main():"):
    """Parse a single function whose body is the dedented ``body``."""
    indented = textwrap.indent(textwrap.dedent(body).strip("\n"), "    ")
    program = parse_source(f"{header}\n{indented}\n")
    return program.functions[0]


def first_stmt(body: str):
    return parse_fn(body).body.statements[0]


class TestProgramStructure:
    def test_empty_program(self):
        assert parse_source("").functions == []

    def test_comment_only_program(self):
        assert parse_source("# nothing\n").functions == []

    def test_two_functions(self):
        program = parse_source(
            "def a():\n    pass\n\ndef b():\n    pass\n"
        )
        assert [f.name for f in program.functions] == ["a", "b"]

    def test_function_lookup(self):
        program = parse_source("def solo():\n    pass\n")
        assert program.function("solo") is not None
        assert program.function("missing") is None

    def test_top_level_statement_rejected(self):
        with pytest.raises(TetraSyntaxError, match="top level"):
            parse_source("x = 1\n")


class TestFunctionHeaders:
    def test_no_params_no_return(self):
        fn = parse_source("def f():\n    pass\n").functions[0]
        assert fn.params == []
        assert fn.return_type is None

    def test_param_types(self):
        fn = parse_source("def f(a int, b real, c string, d bool):\n    pass\n").functions[0]
        names = [p.name for p in fn.params]
        types = [p.type.name for p in fn.params]
        assert names == ["a", "b", "c", "d"]
        assert types == ["int", "real", "string", "bool"]

    def test_array_param(self):
        fn = parse_source("def f(xs [int]):\n    pass\n").functions[0]
        assert isinstance(fn.params[0].type, ArrayTypeExpr)
        assert fn.params[0].type.element.name == "int"

    def test_nested_array_type(self):
        fn = parse_source("def f(m [[real]]):\n    pass\n").functions[0]
        t = fn.params[0].type
        assert isinstance(t, ArrayTypeExpr)
        assert isinstance(t.element, ArrayTypeExpr)
        assert t.element.element.name == "real"

    def test_return_type(self):
        fn = parse_source("def f() int:\n    return 1\n").functions[0]
        assert isinstance(fn.return_type, PrimitiveTypeExpr)
        assert fn.return_type.name == "int"

    def test_array_return_type(self):
        fn = parse_source("def f() [int]:\n    return [1]\n").functions[0]
        assert isinstance(fn.return_type, ArrayTypeExpr)

    def test_missing_param_type(self):
        with pytest.raises(TetraSyntaxError, match="expected a type"):
            parse_source("def f(x):\n    pass\n")

    def test_missing_colon(self):
        with pytest.raises(TetraSyntaxError, match="':'"):
            parse_source("def f()\n    pass\n")

    def test_missing_indent(self):
        with pytest.raises(TetraSyntaxError, match="indent"):
            parse_source("def f():\npass\n")


class TestStatements:
    def test_assignment(self):
        stmt = first_stmt("x = 5")
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.target, Name)
        assert isinstance(stmt.value, IntLiteral)

    def test_indexed_assignment(self):
        stmt = first_stmt("xs[0] = 5")
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.target, Index)

    def test_augmented_assignments(self):
        for op_text, op in [("+=", BinaryOp.ADD), ("-=", BinaryOp.SUB),
                            ("*=", BinaryOp.MUL), ("/=", BinaryOp.DIV),
                            ("%=", BinaryOp.MOD)]:
            stmt = first_stmt(f"x {op_text} 2")
            assert isinstance(stmt, AugAssign)
            assert stmt.op is op

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(TetraSyntaxError, match="assigned to"):
            first_stmt("5 = x")

    def test_assignment_to_call_rejected(self):
        with pytest.raises(TetraSyntaxError, match="assigned to"):
            first_stmt("f() = 1")

    def test_if_else(self):
        stmt = first_stmt("""
            if x:
                a = 1
            else:
                a = 2
        """)
        assert isinstance(stmt, If)
        assert stmt.orelse is not None
        assert stmt.elifs == []

    def test_if_elif_chain(self):
        stmt = first_stmt("""
            if a:
                x = 1
            elif b:
                x = 2
            elif c:
                x = 3
            else:
                x = 4
        """)
        assert isinstance(stmt, If)
        assert len(stmt.elifs) == 2
        assert stmt.orelse is not None

    def test_if_without_else(self):
        stmt = first_stmt("""
            if x:
                a = 1
        """)
        assert stmt.orelse is None

    def test_while(self):
        stmt = first_stmt("""
            while x < 10:
                x += 1
        """)
        assert isinstance(stmt, While)

    def test_for(self):
        stmt = first_stmt("""
            for item in xs:
                y = item
        """)
        assert isinstance(stmt, For)
        assert stmt.var == "item"

    def test_parallel_block(self):
        stmt = first_stmt("""
            parallel:
                a = 1
                b = 2
        """)
        assert isinstance(stmt, ParallelBlock)
        assert len(stmt.body.statements) == 2

    def test_background_block(self):
        stmt = first_stmt("""
            background:
                a = 1
        """)
        assert isinstance(stmt, BackgroundBlock)

    def test_parallel_for(self):
        stmt = first_stmt("""
            parallel for i in xs:
                y = i
        """)
        assert isinstance(stmt, ParallelFor)
        assert stmt.var == "i"

    def test_lock_statement(self):
        stmt = first_stmt("""
            lock counter:
                x += 1
        """)
        assert isinstance(stmt, LockStmt)
        assert stmt.name == "counter"

    def test_lock_needs_name(self):
        with pytest.raises(TetraSyntaxError, match="lock name"):
            first_stmt("""
                lock:
                    x = 1
            """)

    def test_return_with_and_without_value(self):
        fn = parse_fn("""
            return
        """)
        assert isinstance(fn.body.statements[0], Return)
        assert fn.body.statements[0].value is None
        fn = parse_fn("""
            return 42
        """)
        assert isinstance(fn.body.statements[0].value, IntLiteral)

    def test_break_continue_pass(self):
        fn = parse_fn("""
            while x:
                break
            while x:
                continue
            pass
        """)
        stmts = fn.body.statements
        assert isinstance(stmts[0].body.statements[0], Break)
        assert isinstance(stmts[1].body.statements[0], Continue)
        assert isinstance(stmts[2], Pass)

    def test_call_statement(self):
        stmt = first_stmt('print("hi")')
        assert isinstance(stmt, ExprStmt)
        assert isinstance(stmt.expr, Call)


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expression("42"), IntLiteral)
        assert isinstance(parse_expression("4.5"), RealLiteral)
        assert isinstance(parse_expression('"s"'), StringLiteral)
        assert parse_expression("true").value is True
        assert parse_expression("false").value is False

    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op is BinaryOp.ADD
        assert e.right.op is BinaryOp.MUL

    def test_left_associativity(self):
        e = parse_expression("10 - 4 - 3")
        assert e.op is BinaryOp.SUB
        assert isinstance(e.left, BinOp)
        assert e.left.op is BinaryOp.SUB

    def test_power_right_associative(self):
        e = parse_expression("2 ** 3 ** 2")
        assert e.op is BinaryOp.POW
        assert isinstance(e.right, BinOp)
        assert e.right.op is BinaryOp.POW

    def test_power_binds_tighter_than_unary_minus(self):
        e = parse_expression("-2 ** 2")
        assert isinstance(e, Unary)
        assert e.operand.op is BinaryOp.POW

    def test_power_with_negative_exponent(self):
        e = parse_expression("2 ** -3")
        assert e.op is BinaryOp.POW
        assert isinstance(e.right, Unary)

    def test_comparison_below_arithmetic(self):
        e = parse_expression("a + 1 < b * 2")
        assert e.op is BinaryOp.LT

    def test_logical_precedence(self):
        e = parse_expression("a or b and c")
        assert e.op is BinaryOp.OR
        assert e.right.op is BinaryOp.AND

    def test_not_binds_looser_than_comparison(self):
        e = parse_expression("not a < b")
        assert isinstance(e, Unary)
        assert e.op is UnaryOp.NOT
        assert e.operand.op is BinaryOp.LT

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op is BinaryOp.MUL
        assert e.left.op is BinaryOp.ADD

    def test_call_with_arguments(self):
        e = parse_expression("f(1, x, g(2))")
        assert isinstance(e, Call)
        assert len(e.args) == 3
        assert isinstance(e.args[2], Call)

    def test_call_no_arguments(self):
        e = parse_expression("read_int()")
        assert e.args == []

    def test_chained_indexing(self):
        e = parse_expression("m[1][2]")
        assert isinstance(e, Index)
        assert isinstance(e.base, Index)

    def test_index_of_call_result(self):
        e = parse_expression("f()[0]")
        assert isinstance(e, Index)
        assert isinstance(e.base, Call)

    def test_array_literal(self):
        e = parse_expression("[1, 2, 3]")
        assert isinstance(e, ArrayLiteral)
        assert len(e.elements) == 3

    def test_empty_array_literal(self):
        e = parse_expression("[]")
        assert isinstance(e, ArrayLiteral)
        assert e.elements == []

    def test_trailing_comma_tolerated(self):
        e = parse_expression("[1, 2,]")
        assert len(e.elements) == 2

    def test_nested_array_literal(self):
        e = parse_expression("[[1], [2, 3]]")
        assert isinstance(e.elements[0], ArrayLiteral)

    def test_range_literal(self):
        e = parse_expression("[1 ... 100]")
        assert isinstance(e, RangeLiteral)
        assert e.start.value == 1
        assert e.stop.value == 100

    def test_range_with_expressions(self):
        e = parse_expression("[a + 1 ... b * 2]")
        assert isinstance(e, RangeLiteral)
        assert isinstance(e.start, BinOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(TetraSyntaxError, match="trailing"):
            parse_expression("1 + 2 3")

    def test_unclosed_paren(self):
        with pytest.raises(TetraSyntaxError, match="'\\)'"):
            parse_expression("(1 + 2")


class TestSpans:
    def test_function_span_line(self):
        program = parse_source("\ndef f():\n    pass\n")
        assert program.functions[0].span.line == 2

    def test_statement_spans(self):
        fn = parse_fn("""
            x = 1
            y = 2
        """)
        lines = [s.span.line for s in fn.body.statements]
        assert lines == [2, 3]

    def test_binop_span_covers_operands(self):
        e = parse_expression("abc + defg")
        assert e.span.start == 0
        assert e.span.end == len("abc + defg")
