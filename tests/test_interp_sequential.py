"""Interpreter semantics for the sequential language core."""

import pytest

from conftest import run, run_output
from repro.api import run_source
from repro.errors import (
    TetraIndexError,
    TetraLimitError,
    TetraRuntimeError,
    TetraZeroDivisionError,
)
from repro.runtime import RuntimeConfig


class TestExpressions:
    def test_arithmetic(self):
        assert run("""
            def main():
                print(2 + 3 * 4)
                print((2 + 3) * 4)
                print(10 - 2 - 3)
                print(2 ** 10)
        """) == ["14", "20", "5", "1024"]

    def test_integer_division_truncates(self):
        assert run("""
            def main():
                print(7 / 2)
                print(-7 / 2)
                print(7 % 3)
                print(-7 % 3)
        """) == ["3", "-3", "1", "-1"]

    def test_real_arithmetic(self):
        assert run("""
            def main():
                print(7.0 / 2.0)
                print(1.5 + 1)
        """) == ["3.5", "2.5"]

    def test_mixed_promotion(self):
        assert run("""
            def main():
                print(1 / 2.0)
        """) == ["0.5"]

    def test_comparisons(self):
        assert run("""
            def main():
                print(1 < 2, " ", 2 <= 2, " ", 3 > 4, " ", 1 == 1, " ", 1 != 1)
        """) == ["true true false true false"]

    def test_string_operations(self):
        assert run("""
            def main():
                print("foo" + "bar")
                print("abc"[1])
                print("a" < "b")
        """) == ["foobar", "b", "true"]

    def test_short_circuit_and(self):
        # The right side would divide by zero if evaluated.
        assert run("""
            def check(x int) bool:
                return 1 / x > 0

            def main():
                x = 0
                if x != 0 and check(x):
                    print("yes")
                else:
                    print("no")
        """) == ["no"]

    def test_short_circuit_or(self):
        assert run("""
            def boom() bool:
                print("evaluated")
                return true

            def main():
                if true or boom():
                    print("done")
        """) == ["done"]

    def test_unary_operators(self):
        assert run("""
            def main():
                x = 5
                print(-x)
                print(+x)
                print(not true)
        """) == ["-5", "5", "false"]

    def test_array_literal_and_index(self):
        assert run("""
            def main():
                xs = [10, 20, 30]
                print(xs[0], " ", xs[2])
                print(len(xs))
        """) == ["10 30", "3"]

    def test_range_literal_inclusive(self):
        assert run("""
            def main():
                r = [3 ... 6]
                print(len(r), " ", r[0], " ", r[3])
        """) == ["4 3 6"]

    def test_empty_range(self):
        assert run("""
            def main():
                r = [5 ... 1]
                print(len(r))
        """) == ["0"]

    def test_multidimensional_arrays(self):
        assert run("""
            def main():
                m = [[1, 2], [3, 4]]
                m[1][0] = 99
                print(m[1][0], " ", m[0][1])
                print(m)
        """) == ["99 2", "[[1, 2], [99, 4]]"]

    def test_arrays_share_by_reference(self):
        assert run("""
            def mutate(xs [int]):
                xs[0] = 42

            def main():
                a = [1]
                mutate(a)
                print(a[0])
        """) == ["42"]

    def test_int_widens_into_real_variable(self):
        assert run("""
            def main():
                x = 1.5
                x = 2
                print(x)
        """) == ["2.0"]


class TestControlFlow:
    def test_if_elif_else(self):
        assert run("""
            def grade(n int) string:
                if n >= 90:
                    return "A"
                elif n >= 80:
                    return "B"
                elif n >= 70:
                    return "C"
                else:
                    return "F"

            def main():
                print(grade(95), grade(85), grade(75), grade(10))
        """) == ["ABCF"]

    def test_while_loop(self):
        assert run("""
            def main():
                total = 0
                i = 1
                while i <= 10:
                    total += i
                    i += 1
                print(total)
        """) == ["55"]

    def test_break_and_continue(self):
        assert run("""
            def main():
                total = 0
                for i in [1 ... 10]:
                    if i % 2 == 0:
                        continue
                    if i > 7:
                        break
                    total += i
                print(total)
        """) == ["16"]  # 1 + 3 + 5 + 7

    def test_nested_loop_break_inner_only(self):
        assert run("""
            def main():
                count = 0
                for i in [1 ... 3]:
                    for j in [1 ... 3]:
                        if j == 2:
                            break
                        count += 1
                print(count)
        """) == ["3"]

    def test_for_over_string(self):
        assert run("""
            def main():
                out = ""
                for c in "abc":
                    out = c + out
                print(out)
        """) == ["cba"]

    def test_loop_variable_persists_after_loop(self):
        assert run("""
            def main():
                for i in [1 ... 3]:
                    pass
                print(i)
        """) == ["3"]


class TestFunctions:
    def test_recursion(self):
        assert run("""
            def fib(n int) int:
                if n < 2:
                    return n
                return fib(n - 1) + fib(n - 2)

            def main():
                print(fib(15))
        """) == ["610"]

    def test_mutual_recursion(self):
        assert run("""
            def is_even(n int) bool:
                if n == 0:
                    return true
                return is_odd(n - 1)

            def is_odd(n int) bool:
                if n == 0:
                    return false
                return is_even(n - 1)

            def main():
                print(is_even(10), " ", is_odd(7))
        """) == ["true true"]

    def test_arguments_evaluated_left_to_right(self):
        assert run("""
            def trace(label string, v int) int:
                print(label)
                return v

            def add(a int, b int) int:
                return a + b

            def main():
                print(add(trace("first", 1), trace("second", 2)))
        """) == ["first", "second", "3"]

    def test_return_stops_execution(self):
        assert run("""
            def f() int:
                return 1
                print("unreachable")

            def main():
                print(f())
        """) == ["1"]

    def test_int_return_widens_in_real_function(self):
        assert run("""
            def f() real:
                return 3

            def main():
                print(f())
        """) == ["3.0"]

    def test_parameters_are_local(self):
        assert run("""
            def change(x int):
                x = 99

            def main():
                x = 1
                change(x)
                print(x)
        """) == ["1"]

    def test_recursion_limit(self):
        with pytest.raises(TetraLimitError, match="recursion depth"):
            run("""
                def loop(n int) int:
                    return loop(n + 1)

                def main():
                    print(loop(0))
            """)

    def test_shadowing_builtin_calls_user_function(self):
        assert run("""
            def len(x int) int:
                return 1000

            def main():
                print(len(5))
        """) == ["1000"]


class TestRuntimeErrors:
    def test_division_by_zero(self):
        with pytest.raises(TetraZeroDivisionError):
            run("""
                def main():
                    x = 0
                    print(1 / x)
            """)

    def test_index_out_of_range(self):
        with pytest.raises(TetraIndexError, match="out of range"):
            run("""
                def main():
                    xs = [1]
                    print(xs[5])
            """)

    def test_string_index_out_of_range(self):
        with pytest.raises(TetraRuntimeError, match="out of range"):
            run("""
                def main():
                    print("ab"[5])
            """)

    def test_step_limit(self):
        with pytest.raises(TetraLimitError, match="budget"):
            run("""
                def main():
                    while true:
                        pass
            """, config=RuntimeConfig(step_limit=1000))

    def test_missing_entry_function(self):
        with pytest.raises(TetraRuntimeError, match="no 'main'"):
            run("""
                def helper():
                    pass
            """)

    def test_error_includes_line(self):
        with pytest.raises(TetraZeroDivisionError) as info:
            run_source("def main():\n    x = 0\n    print(5 / x)\n")
        assert info.value.span.line == 3
        assert "5 / x" in info.value.render()


class TestIO:
    def test_read_int_real_string_bool(self):
        assert run("""
            def main():
                print(read_int() + 1)
                print(read_real() * 2.0)
                print(read_string() + "!")
                print(not read_bool())
        """, inputs=["41", "1.5", "hey", "true"]) == ["42", "3.0", "hey!", "false"]

    def test_print_joins_without_separator(self):
        assert run_output("""
            def main():
                print(1, " and ", 2.5, " and ", true)
        """) == "1 and 2.5 and true\n"

    def test_print_empty_line(self):
        assert run_output("""
            def main():
                print()
        """) == "\n"

    def test_missing_input(self):
        from repro.errors import TetraIOError

        with pytest.raises(TetraIOError, match="none was provided"):
            run("""
                def main():
                    x = read_int()
            """)

    def test_bad_int_input(self):
        from repro.errors import TetraIOError

        with pytest.raises(TetraIOError, match="expected an int"):
            run("""
                def main():
                    x = read_int()
            """, inputs=["not-a-number"])
