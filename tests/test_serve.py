"""The hosted execution service (``tetra serve``): protocol, quotas,
pool, service, and the HTTP/WebSocket transport under concurrency."""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import (
    EXIT_CANCELLED,
    EXIT_DEADLOCK,
    EXIT_ERROR,
    EXIT_LIMIT,
    EXIT_OK,
    EXIT_RACES,
    EXIT_USAGE,
)
from repro.serve import (
    ExecutionService,
    ServeConfig,
    ServeError,
    TenantQuotas,
    TetraServer,
    http_status_for_exit,
    validate_request,
)
from repro.serve import ws as ws_mod

HELLO = 'def main():\n    print("hello")\n'
COUNT = "def main():\n    for i in [0 ... 3]:\n        print(i)\n"
SPIN = "def main():\n    x = 0\n    while true:\n        x = x + 1\n"
NOISY = 'def main():\n    while true:\n        print("aaaaaaaaaa")\n'
RACY = (
    "def main():\n"
    "    t = 0\n"
    "    parallel for i in [1 ... 8]:\n"
    "        t += 1\n"
    "    print(t)\n"
)


def _cfg(**overrides) -> ServeConfig:
    """A config sized for tests: tiny pool, effectively-off rate limit."""
    # result_cache_size=0: the legacy suite exercises the live execution
    # path; dedup behaviour has its own suite (test_serve_dedup.py).
    defaults = dict(port=0, workers=2, rate=10_000.0, burst=10_000,
                    max_concurrent=64, watchdog_grace=2.0,
                    default_time_limit=10.0, result_cache_size=0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_exit_to_http_mapping(self):
        assert http_status_for_exit(EXIT_OK) == 200
        assert http_status_for_exit(EXIT_ERROR) == 422
        assert http_status_for_exit(EXIT_USAGE) == 400
        assert http_status_for_exit(EXIT_RACES) == 200
        assert http_status_for_exit(EXIT_LIMIT) == 408
        assert http_status_for_exit(EXIT_DEADLOCK) == 409
        assert http_status_for_exit(EXIT_CANCELLED) == 499
        assert http_status_for_exit(77) == 500  # unknown -> server error

    def test_defaults_applied(self):
        cfg = ServeConfig()
        req = validate_request({"source": HELLO}, cfg)
        assert req["time_limit"] == cfg.default_time_limit
        assert req["memory_limit"] == cfg.default_memory_limit
        assert req["output_limit"] == cfg.default_output_limit
        assert req["backend"] == "thread"
        assert req["entry"] == "main"

    def test_limits_clamped_to_ceiling(self):
        cfg = ServeConfig()
        req = validate_request(
            {"source": HELLO, "time_limit": 9999.0,
             "step_limit": 10**12, "workers": 999}, cfg)
        assert req["time_limit"] == cfg.max_time_limit
        assert req["step_limit"] == cfg.max_step_limit
        assert req["workers"] == cfg.max_workers_per_run

    def test_unknown_field_rejected(self):
        with pytest.raises(ServeError) as err:
            validate_request({"source": HELLO, "stepp_limit": 5},
                             ServeConfig())
        assert err.value.status == 400
        assert "stepp_limit" in err.value.message

    def test_oversized_source_rejected(self):
        cfg = ServeConfig(max_source_bytes=64)
        with pytest.raises(ServeError) as err:
            validate_request({"source": "def main():\n" + " " * 200}, cfg)
        assert err.value.status == 413

    def test_bad_backend_and_entry(self):
        with pytest.raises(ServeError, match="backend"):
            validate_request({"source": HELLO, "backend": "quantum"},
                             ServeConfig())
        with pytest.raises(ServeError, match="entry"):
            validate_request({"source": HELLO, "entry": "not an ident"},
                             ServeConfig())

    def test_non_object_body_rejected(self):
        with pytest.raises(ServeError):
            validate_request(["not", "a", "dict"], ServeConfig())

    def test_nan_limit_rejected_not_passed_through(self):
        # Regression: min(NaN, ceiling) returns NaN, which every later
        # `elapsed > limit` comparison answers False to — a NaN
        # time_limit used to disable the guardrail entirely.
        for field in ("time_limit", "memory_limit", "step_limit",
                      "output_limit"):
            with pytest.raises(ServeError) as err:
                validate_request({"source": HELLO, field: float("nan")},
                                 ServeConfig())
            assert err.value.status == 400
            assert field in err.value.message

    def test_infinite_limit_rejected_with_400(self):
        # Regression: Infinity survived the < 0 check and blew up int()
        # with an OverflowError (a 500) deep in dispatch.
        with pytest.raises(ServeError) as err:
            validate_request({"source": HELLO,
                              "step_limit": float("inf")}, ServeConfig())
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            validate_request({"source": HELLO,
                              "time_limit": float("-inf")}, ServeConfig())
        assert err.value.status == 400

    def test_negative_limit_rejected(self):
        with pytest.raises(ServeError) as err:
            validate_request({"source": HELLO, "memory_limit": -5},
                             ServeConfig())
        assert err.value.status == 400
        assert "non-negative" in err.value.message

    def test_non_numeric_limit_rejected(self):
        for bad in ("10", True, [], {}):
            with pytest.raises(ServeError) as err:
                validate_request({"source": HELLO, "time_limit": bad},
                                 ServeConfig())
            assert err.value.status == 400
            assert "must be a number" in err.value.message

    def test_zero_still_means_server_default(self):
        cfg = ServeConfig()
        req = validate_request({"source": HELLO, "time_limit": 0},
                               cfg)
        assert req["time_limit"] == cfg.default_time_limit


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------
class TestQuotas:
    def test_burst_then_rate_limited(self):
        now = [0.0]
        q = TenantQuotas(rate=1.0, burst=2, max_concurrent=99,
                         clock=lambda: now[0])
        q.admit("a")
        q.admit("a")
        with pytest.raises(ServeError) as err:
            q.admit("a")
        assert err.value.status == 429
        assert err.value.retry_after is not None
        now[0] += 1.0  # one token refilled
        q.admit("a")

    def test_tenants_do_not_share_buckets(self):
        now = [0.0]
        q = TenantQuotas(rate=1.0, burst=1, max_concurrent=99,
                         clock=lambda: now[0])
        q.admit("a")
        with pytest.raises(ServeError):
            q.admit("a")
        q.admit("b")  # a's exhaustion does not touch b

    def test_concurrency_quota_released_on_finish(self):
        now = [0.0]
        q = TenantQuotas(rate=1000.0, burst=1000, max_concurrent=2,
                         clock=lambda: now[0])
        q.admit("a")
        q.admit("a")
        with pytest.raises(ServeError) as err:
            q.admit("a")
        assert "running request" in err.value.message
        q.release("a")
        q.admit("a")

    def test_zero_rate_tenant_refused_cleanly(self):
        # Regression: rate=0 (the operator's off switch) used to compute
        # retry_after by dividing by the refill rate.  The burst still
        # spends, then the refusal is clean with a capped Retry-After.
        from repro.serve.quotas import RETRY_AFTER_CAP

        now = [0.0]
        q = TenantQuotas(rate=0.0, burst=2, max_concurrent=99,
                         clock=lambda: now[0])
        q.admit("off")
        q.admit("off")
        with pytest.raises(ServeError) as err:
            q.admit("off")
        assert err.value.status == 429
        assert err.value.retry_after == RETRY_AFTER_CAP
        assert "disabled" in err.value.message
        now[0] += 10_000.0  # no amount of waiting refills a dead bucket
        with pytest.raises(ServeError):
            q.admit("off")

    def test_retry_after_is_capped(self):
        from repro.serve.quotas import RETRY_AFTER_CAP

        q = TenantQuotas(rate=0.001, burst=1, max_concurrent=99,
                         clock=lambda: 0.0)
        q.admit("slow")
        with pytest.raises(ServeError) as err:
            q.admit("slow")  # honest wait would be ~1000s
        assert err.value.retry_after == RETRY_AFTER_CAP

    def test_prune_on_full_never_resurrects_a_limited_tenant(self):
        # Regression: a full-table prune must not evict a bucket with
        # spent tokens — the tenant would return with a fresh burst.
        now = [0.0]
        q = TenantQuotas(rate=0.0, burst=1, max_concurrent=99,
                         clock=lambda: now[0], max_tenants=1)
        q.admit("storm")
        q.release("storm")  # idle but *spent* — must stay pinned
        q.admit("newcomer")  # table full -> prune sweep runs
        with pytest.raises(ServeError) as err:
            q.admit("storm")  # still rate-limited, not resurrected
        assert err.value.status == 429
        assert q.stats()["pruned"] == 0

    def test_prune_on_full_evicts_only_fresh_equivalent_buckets(self):
        now = [0.0]
        q = TenantQuotas(rate=1.0, burst=1, max_concurrent=99,
                         clock=lambda: now[0], max_tenants=1)
        q.admit("idle")
        q.release("idle")   # tokens=0: pinned for now
        q.admit("busy")     # prune runs, evicts nothing (idle is spent)
        assert q.stats()["tenants_tracked"] == 2
        now[0] += 5.0       # idle's bucket fully refills
        q.admit("third")    # prune evicts idle (fresh-equivalent) only:
        stats = q.stats()   # busy has an active run, third is new
        assert stats["pruned"] == 1
        assert q.active("busy") == 1  # an active tenant is never pruned


# ----------------------------------------------------------------------
# The service (no HTTP): pool behavior under concurrency
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service():
    svc = ExecutionService(_cfg())
    yield svc
    svc.shutdown()


class TestExecutionService:
    def test_basic_run(self, service):
        result = service.run({"source": HELLO})
        assert result["exit_code"] == 0
        assert result["output"] == "hello\n"
        assert result["status"] == "ok"
        assert result["id"]

    def test_compile_reject_costs_no_worker(self, service):
        before = service.pool.stats()["served"]
        result = service.run({"source": "def main(:\n"})
        assert result["exit_code"] == EXIT_ERROR
        assert result["phase"] == "compile"
        assert "expected" in result["error"]
        assert service.pool.stats()["served"] == before

    def test_runtime_error_reported(self, service):
        result = service.run(
            {"source": "def main():\n    print(1 / 0)\n"})
        assert result["exit_code"] == EXIT_ERROR
        assert result["phase"] == "run"
        assert "division" in result["error"].lower()

    def test_races_reported_with_exit_3(self, service):
        result = service.run({"source": RACY, "detect_races": True,
                              "workers": 4})
        assert result["exit_code"] in (EXIT_OK, EXIT_RACES)
        # The racy increment is usually caught; when it is, the panel
        # rides along and the run itself still completed.
        if result["exit_code"] == EXIT_RACES:
            assert result["race_count"] > 0
            assert "race" in result["races"].lower()

    def test_output_limit_aborts_print_loop(self, service):
        result = service.run({"source": NOISY, "output_limit": 2000,
                              "step_limit": 10_000_000})
        assert result["exit_code"] == EXIT_LIMIT
        assert result["status"] == "output"
        # Partial output survives up to (just past) the cap.
        assert 2000 <= len(result["output"]) < 2100

    def test_eight_concurrent_mixed_requests_are_isolated(self, service):
        """The acceptance scenario: >=8 concurrent requests mixing
        programs, tenants, and verdicts — each gets its own output."""
        requests = []
        for i in range(4):
            src = f'def main():\n    print("tenant-{i}")\n'
            requests.append((src, f"t{i}", 0, f"tenant-{i}\n"))
        requests.append(("def main():\n    print(1 / 0)\n",
                         "t4", EXIT_ERROR, ""))
        requests.append((NOISY, "t5", EXIT_LIMIT, None))
        requests.append((COUNT, "t6", 0, "0\n1\n2\n3\n"))
        requests.append((HELLO, "t7", 0, "hello\n"))

        def one(spec):
            src, tenant, _code, _out = spec
            return service.run(
                {"source": src, "output_limit": 3000,
                 "step_limit": 10_000_000},
                tenant=tenant)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(one, requests))
        for (src, tenant, code, out), result in zip(requests, results):
            assert result["exit_code"] == code, (tenant, result)
            if out is not None:
                assert result["output"] == out, (tenant, result)
        # No worker was lost and nothing leaked a quota slot.
        stats = service.stats()
        assert stats["pool"]["workers"] == service.config.workers
        assert stats["pool"]["busy"] == 0
        assert stats["quotas"]["active_runs"] == 0

    def test_concurrent_same_source_shares_cache(self, service):
        src = 'def main():\n    print("cache-me-serve")\n'
        cache_before = service.stats()["program_cache"]
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(
                lambda i: service.run({"source": src}, tenant=f"c{i}"),
                range(6)))
        assert all(r["output"] == "cache-me-serve\n" for r in results)
        cache_after = service.stats()["program_cache"]
        # Single-flight: six concurrent first-requests record exactly one
        # miss for this key; the rest are hits.
        assert cache_after["misses"] == cache_before["misses"] + 1
        assert cache_after["hits"] >= cache_before["hits"] + 5

    def test_cancel_mid_run_frees_the_worker(self, service):
        handle = service.submit({"source": SPIN, "time_limit": 25.0,
                                 "step_limit": 500_000_000})
        deadline = time.monotonic() + 5.0
        while handle.worker_pid is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert handle.worker_pid is not None
        assert service.cancel(handle.id, "test cancel")
        result = handle.wait(5.0)
        assert result["exit_code"] == EXIT_CANCELLED
        assert result["status"] == "cancelled"
        assert "test cancel" in result["error"]
        # The replacement worker serves the next request immediately.
        follow_up = service.run({"source": HELLO})
        assert follow_up["output"] == "hello\n"
        stats = service.pool.stats()
        assert stats["workers"] == service.config.workers
        assert stats["cancelled"] >= 1

    def test_cancel_unknown_id_is_false(self, service):
        assert service.cancel("r0-ffffff") is False

    def test_crashed_worker_does_not_poison_the_pool(self, service):
        handle = service.submit({"source": SPIN, "time_limit": 25.0,
                                 "step_limit": 500_000_000})
        deadline = time.monotonic() + 5.0
        while handle.worker_pid is None and time.monotonic() < deadline:
            time.sleep(0.01)
        os.kill(handle.worker_pid, signal.SIGKILL)  # simulate an OOM kill
        result = handle.wait(10.0)
        assert result["exit_code"] == EXIT_ERROR
        assert "died mid-run" in result["error"]
        # Siblings are unharmed and the dead slot was respawned.
        follow_up = service.run({"source": HELLO})
        assert follow_up["output"] == "hello\n"
        stats = service.pool.stats()
        assert stats["workers"] == service.config.workers
        assert stats["crashed"] >= 1
        assert handle.worker_pid not in stats["worker_pids"]

    def test_watchdog_kills_wedged_run(self):
        svc = ExecutionService(_cfg(workers=1, watchdog_grace=0.5))
        try:
            # time_limit is ignored in-worker on sim (virtual clock), so
            # only the parent watchdog can end this spin.
            result = svc.run({"source": SPIN, "backend": "sim",
                              "time_limit": 0.5,
                              "step_limit": 500_000_000})
            assert result["exit_code"] == EXIT_LIMIT
            assert result["status"] == "time"
            assert "watchdog" in result["error"]
            assert svc.pool.stats()["watchdog_kills"] >= 1
            follow_up = svc.run({"source": HELLO})
            assert follow_up["output"] == "hello\n"
        finally:
            svc.shutdown()

    def test_quota_exhaustion_returns_429(self):
        svc = ExecutionService(_cfg(rate=1000.0, burst=1000,
                                    max_concurrent=1))
        try:
            handle = svc.submit({"source": SPIN, "time_limit": 25.0,
                                 "step_limit": 500_000_000},
                                tenant="greedy")
            with pytest.raises(ServeError) as err:
                svc.submit({"source": HELLO}, tenant="greedy")
            assert err.value.status == 429
            # Another tenant is not affected by greedy's quota.
            other = svc.run({"source": HELLO}, tenant="polite")
            assert other["exit_code"] == 0
            svc.cancel(handle.id)
            handle.wait(5.0)
            # The slot frees once the run finishes.
            again = svc.run({"source": HELLO}, tenant="greedy")
            assert again["exit_code"] == 0
        finally:
            svc.shutdown()

    def test_rate_limit_returns_429_with_retry_after(self):
        svc = ExecutionService(_cfg(rate=0.001, burst=1))
        try:
            svc.run({"source": HELLO})
            with pytest.raises(ServeError) as err:
                svc.submit({"source": HELLO})
            assert err.value.status == 429
            assert err.value.retry_after > 0
        finally:
            svc.shutdown()

    def test_worker_recycled_after_quota(self):
        svc = ExecutionService(_cfg(workers=1, recycle_after=2))
        try:
            first_pid = None
            for i in range(3):
                result = svc.run({"source": HELLO})
                assert result["output"] == "hello\n"
                if first_pid is None:
                    first_pid = svc.pool.stats()["worker_pids"][0]
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                stats = svc.pool.stats()
                if stats["recycled"] >= 1 \
                        and first_pid not in stats["worker_pids"]:
                    break
                time.sleep(0.05)
            stats = svc.pool.stats()
            assert stats["recycled"] >= 1
            assert first_pid not in stats["worker_pids"]
            assert stats["workers"] == 1
        finally:
            svc.shutdown()

    def test_check_reports_diagnostics(self, service):
        good = service.check({"source": HELLO})
        assert good["ok"] and good["diagnostics"] == []
        bad = service.check({"source": "def main():\n    x = 1 + true\n"})
        assert not bad["ok"] and bad["diagnostics"]

    def test_stats_shape(self, service):
        stats = service.stats()
        assert {"requests_total", "pool", "quotas",
                "program_cache"} <= set(stats)
        assert 0.0 <= stats["program_cache"]["hit_rate"] <= 1.0


# ----------------------------------------------------------------------
# HTTP + WebSocket transport
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    svc = ExecutionService(_cfg())
    srv = TetraServer(("127.0.0.1", 0), svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield host, port
    srv.shutdown()
    srv.server_close()
    svc.shutdown()
    thread.join(timeout=5.0)


def _post(server, path, payload, tenant=None):
    host, port = server
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Tetra-Tenant"] = tenant
    req = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode("utf-8"), headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(server, path):
    host, port = server
    try:
        with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                    timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHTTP:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200 and body["ok"]

    def test_run_ok(self, server):
        status, body = _post(server, "/api/run", {"source": HELLO})
        assert status == 200
        assert body["exit_code"] == 0
        assert body["output"] == "hello\n"

    def test_run_program_error_is_422(self, server):
        status, body = _post(server, "/api/run",
                             {"source": "def main():\n    print(1 / 0)\n"})
        assert status == 422 and body["exit_code"] == EXIT_ERROR

    def test_run_limit_is_408(self, server):
        status, body = _post(server, "/api/run",
                             {"source": NOISY, "output_limit": 2000,
                              "step_limit": 10_000_000})
        assert status == 408 and body["exit_code"] == EXIT_LIMIT

    def test_malformed_request_is_400(self, server):
        status, body = _post(server, "/api/run",
                             {"source": HELLO, "bogus": 1})
        assert status == 400 and "bogus" in body["error"]

    def test_unknown_route_is_404(self, server):
        status, body = _post(server, "/api/nope", {})
        assert status == 404

    def test_stats_route(self, server):
        status, body = _get(server, "/api/stats")
        assert status == 200 and "pool" in body

    def test_check_route(self, server):
        status, body = _post(server, "/api/check", {"source": HELLO})
        assert status == 200 and body["ok"]

    def test_stream_carries_live_output(self, server):
        host, port = server
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("POST", "/api/stream",
                     json.dumps({"source": COUNT}).encode("utf-8"))
        resp = conn.getresponse()
        assert resp.status == 200
        events = [json.loads(line)
                  for line in resp.read().splitlines() if line.strip()]
        conn.close()
        assert events[0]["type"] == "start" and events[0]["id"]
        outs = [e["text"] for e in events if e["type"] == "out"]
        assert "".join(outs) == "0\n1\n2\n3\n"
        done = events[-1]
        assert done["type"] == "done"
        assert done["exit_code"] == 0 and done["http_status"] == 200

    def test_cancel_over_http_mid_stream(self, server):
        host, port = server
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("POST", "/api/stream",
                     json.dumps({"source": SPIN, "time_limit": 25.0,
                                 "step_limit": 500_000_000})
                     .encode("utf-8"))
        resp = conn.getresponse()
        start = json.loads(resp.readline())
        assert start["type"] == "start"
        # Wait until the run is actually on a worker, then cancel it
        # from a second connection.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if _get(server, "/api/stats")[1]["pool"]["busy"]:
                break
            time.sleep(0.02)
        status, body = _post(server, "/api/cancel", {"id": start["id"]})
        assert status == 200 and body["cancelled"]
        events = [json.loads(line)
                  for line in resp.read().splitlines() if line.strip()]
        conn.close()
        done = events[-1]
        assert done["type"] == "done"
        assert done["exit_code"] == EXIT_CANCELLED
        assert done["http_status"] == 499
        # The pool healed: a follow-up request runs fine.
        status, body = _post(server, "/api/run", {"source": HELLO})
        assert status == 200 and body["output"] == "hello\n"

    def test_cancel_unknown_id_is_404(self, server):
        status, body = _post(server, "/api/cancel", {"id": "r0-ffffff"})
        assert status == 404 and not body["cancelled"]

    def test_parallel_http_requests(self, server):
        def one(i):
            return _post(server, "/api/run",
                         {"source": f'def main():\n    print({i})\n'},
                         tenant=f"p{i}")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(one, range(8)))
        for i, (status, body) in enumerate(results):
            assert status == 200
            assert body["output"] == f"{i}\n"


class TestWebSocket:
    def _open(self, server):
        host, port = server
        sock = socket.create_connection((host, port), timeout=30)
        key = "dGhlIHNhbXBsZSBub25jZQ=="
        sock.sendall((
            f"GET /api/ws HTTP/1.1\r\nHost: {host}:{port}\r\n"
            "Upgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n").encode("ascii"))
        rfile = sock.makefile("rb")
        status_line = rfile.readline()
        assert b"101" in status_line
        accept = None
        while True:
            line = rfile.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode("ascii").partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        assert accept == ws_mod.accept_key(key)
        return sock, rfile

    def _send(self, sock, message: dict) -> None:
        sock.sendall(ws_mod.encode_frame(
            json.dumps(message).encode("utf-8"), mask=True))

    def _events(self, rfile):
        while True:
            opcode, payload = ws_mod.read_frame(rfile)
            if opcode == ws_mod.OP_CLOSE:
                return
            yield json.loads(payload)

    def test_round_trip_streams_output(self, server):
        sock, rfile = self._open(server)
        try:
            self._send(sock, {"source": COUNT})
            events = list(self._events(rfile))
        finally:
            sock.close()
        assert events[0]["type"] == "start"
        outs = [e["text"] for e in events if e["type"] == "out"]
        assert "".join(outs) == "0\n1\n2\n3\n"
        assert events[-1]["type"] == "done"
        assert events[-1]["exit_code"] == 0

    def test_cancel_over_websocket(self, server):
        sock, rfile = self._open(server)
        try:
            self._send(sock, {"source": SPIN, "time_limit": 25.0,
                              "step_limit": 500_000_000})
            opcode, payload = ws_mod.read_frame(rfile)
            start = json.loads(payload)
            assert start["type"] == "start"
            self._send(sock, {"type": "cancel"})
            events = list(self._events(rfile))
        finally:
            sock.close()
        assert events[-1]["type"] == "done"
        assert events[-1]["exit_code"] == EXIT_CANCELLED

    def test_plain_get_is_rejected(self, server):
        status, body = _get(server, "/api/ws")
        assert status == 426

    def test_frame_codec_round_trips(self):
        for size in (0, 1, 125, 126, 70_000):
            payload = bytes(range(256)) * (size // 256 + 1)
            payload = payload[:size]
            for mask in (False, True):
                frame = ws_mod.encode_frame(payload, ws_mod.OP_BINARY,
                                            mask=mask)
                import io as _io

                opcode, decoded = ws_mod.read_frame(_io.BytesIO(frame))
                assert opcode == ws_mod.OP_BINARY
                assert decoded == payload
