"""Tests for the interactive REPL (session engine and loop)."""

import io

import pytest

from repro.errors import TetraError
from repro.stdlib.io import CapturingIO
from repro.tools.repl import Repl, ReplSession


def drive(lines, io_channel=None):
    """Feed lines to the REPL loop; return what it printed."""
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    Repl(stdin=stdin, stdout=stdout, io=io_channel).loop()
    return stdout.getvalue()


class TestSessionEngine:
    def test_variables_persist(self):
        session = ReplSession(CapturingIO())
        session.run_statements("x = 10\n")
        session.run_statements("y = x * 2\n")
        expr = session.try_parse_expression("x + y")
        assert session.eval_expression(expr) == "30"

    def test_expression_classification(self):
        session = ReplSession(CapturingIO())
        assert session.try_parse_expression("1 + 2") is not None
        assert session.try_parse_expression("x = 1") is None
        assert session.try_parse_expression("if x:") is None
        assert session.try_parse_expression("1 + ") is None

    def test_void_expression_returns_none(self):
        console = CapturingIO()
        session = ReplSession(console)
        expr = session.try_parse_expression('print("side effect")')
        assert session.eval_expression(expr) is None
        assert console.output == "side effect\n"

    def test_function_definition_and_call(self):
        session = ReplSession(CapturingIO())
        names = session.define_functions(
            "def triple(n int) int:\n    return n * 3\n"
        )
        assert names == ["triple"]
        expr = session.try_parse_expression("triple(7)")
        assert session.eval_expression(expr) == "21"

    def test_redefinition_replaces(self):
        session = ReplSession(CapturingIO())
        session.define_functions("def f() int:\n    return 1\n")
        session.define_functions("def f() int:\n    return 2\n")
        expr = session.try_parse_expression("f()")
        assert session.eval_expression(expr) == "2"

    def test_bad_definition_rolls_back(self):
        session = ReplSession(CapturingIO())
        session.define_functions("def ok() int:\n    return 1\n")
        with pytest.raises(TetraError):
            session.define_functions(
                "def broken() int:\n    return missing\n"
            )
        # The old function set still works.
        expr = session.try_parse_expression("ok()")
        assert session.eval_expression(expr) == "1"
        assert "broken" not in session.functions

    def test_type_errors_surface(self):
        session = ReplSession(CapturingIO())
        session.run_statements("n = 1\n")
        with pytest.raises(TetraError, match="cannot hold"):
            session.run_statements('n = "string"\n')

    def test_static_type_of(self):
        session = ReplSession(CapturingIO())
        assert session.static_type_of("1 + 2") == "int"
        assert session.static_type_of("1 / 2.0") == "real"
        assert session.static_type_of("[1, 2]") == "[int]"
        assert session.static_type_of('(1, "a")') == "(int, string)"

    def test_return_outside_function_rejected(self):
        session = ReplSession(CapturingIO())
        with pytest.raises(TetraError, match="return"):
            session.run_statements("return 5\n")

    def test_parallel_constructs_work(self):
        session = ReplSession(CapturingIO())
        session.run_statements(
            "total = 0\n"
            "parallel for i in [1 ... 10]:\n"
            "    lock t:\n"
            "        total += i\n"
        )
        expr = session.try_parse_expression("total")
        assert session.eval_expression(expr) == "55"

    def test_variables_listing(self):
        session = ReplSession(CapturingIO())
        session.run_statements('x = 1\ns = "hi"\n')
        rows = session.variables()
        assert ("s", "string", "hi") in rows
        assert ("x", "int", "1") in rows

    def test_load_file(self, tmp_path):
        path = tmp_path / "lib.ttr"
        path.write_text("def square(n int) int:\n    return n * n\n")
        session = ReplSession(CapturingIO())
        assert session.load_file(str(path)) == ["square"]
        expr = session.try_parse_expression("square(6)")
        assert session.eval_expression(expr) == "36"

    def test_continuation_detection(self):
        assert ReplSession.needs_continuation("if x > 1:")
        assert ReplSession.needs_continuation("while true:")
        assert not ReplSession.needs_continuation("x = 1")
        assert not ReplSession.needs_continuation('s = "a:"')


class TestReplLoop:
    def test_expression_echo(self):
        out = drive(["2 + 3", ":quit"])
        assert "5" in out

    def test_statements_then_expression(self):
        out = drive(["x = 4", "x * x", ":quit"])
        assert "16" in out

    def test_block_input(self):
        out = drive([
            "total = 0",
            "for i in [1 ... 4]:",
            "    total += i",
            "",              # ends the block
            "total",
            ":quit",
        ])
        assert "10" in out

    def test_def_block(self):
        out = drive([
            "def inc(n int) int:",
            "    return n + 1",
            "",
            "inc(41)",
            ":quit",
        ])
        assert "defined inc" in out
        assert "42" in out

    def test_vars_and_funcs_commands(self):
        out = drive([
            "x = 7",
            "def f() int:",
            "    return 1",
            "",
            ":vars",
            ":funcs",
            ":quit",
        ])
        assert "x int = 7" in out
        assert "def f() int" in out

    def test_type_command(self):
        out = drive([":type 1.5 * 2", ":quit"])
        assert "real" in out

    def test_help_and_unknown_command(self):
        out = drive([":help", ":bogus", ":quit"])
        assert ":vars" in out
        assert "unknown command" in out

    def test_errors_do_not_kill_loop(self):
        out = drive(["boom", "1 + 1", ":quit"])
        assert "not defined" in out
        assert "2" in out

    def test_eof_exits(self):
        out = drive([])  # immediate EOF
        assert "Tetra REPL" in out

    def test_program_output_goes_to_console(self):
        console = CapturingIO()
        drive(['print("to console")', ":quit"], io_channel=console)
        assert console.output == "to console\n"


class TestReplClasses:
    def test_class_definition_and_use(self):
        session = ReplSession(CapturingIO())
        names = session.define_functions(
            "class Pt:\n    x int\n    def double() int:\n"
            "        return self.x * 2\n"
        )
        assert names == ["Pt"]
        session.run_statements("p = Pt(21)\n")
        expr = session.try_parse_expression("p.double()")
        assert session.eval_expression(expr) == "42"
        assert any("class Pt" in sig for sig in session.function_signatures())

    def test_class_loop_input(self):
        out = drive([
            "class Box:",
            "    v int",
            "    def bump() int:",
            "        self.v += 1",
            "        return self.v",
            "",
            "b = Box(9)",
            "b.bump()",
            ":quit",
        ])
        assert "defined Box" in out
        assert "10" in out

    def test_try_catch_multiline_input(self):
        # A blank line inside an incomplete block does not end it: the
        # reader waits for the catch half before executing.
        out = drive([
            "try:",
            "    error(\"boom\")",
            "catch e:",
            "    print(\"handled\")",
            "",
            ":quit",
        ], io_channel=(console := CapturingIO()))
        assert console.output == "handled\n"
