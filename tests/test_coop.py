"""Cooperative scheduler tests: determinism, policies, race exposure,
deadlock detection."""

import textwrap

import pytest

from repro.api import run_source
from repro.errors import TetraDeadlockError
from repro.runtime import RuntimeConfig
from repro.runtime.coop import (
    CoopBackend,
    RandomPolicy,
    RoundRobinPolicy,
    ScriptPolicy,
)
from repro.programs import DEADLOCK_DEMO, RACE_DEMO


def run_coop(text, policy, num_workers=4, inputs=None):
    backend = CoopBackend(policy, config=RuntimeConfig(num_workers=num_workers))
    result = run_source(textwrap.dedent(text), inputs=inputs, backend=backend)
    return result.output_lines()


INTERLEAVE = """
def main():
    parallel:
        print("a")
        print("b")
        print("c")
"""


class TestDeterminism:
    def test_round_robin_is_reproducible(self):
        first = run_coop(INTERLEAVE, RoundRobinPolicy(1))
        for _ in range(3):
            assert run_coop(INTERLEAVE, RoundRobinPolicy(1)) == first

    def test_random_policy_reproducible_per_seed(self):
        base = run_coop(INTERLEAVE, RandomPolicy(seed=7))
        assert run_coop(INTERLEAVE, RandomPolicy(seed=7)) == base

    def test_random_seeds_cover_schedules(self):
        # Across many seeds we should observe more than one interleaving.
        seen = {tuple(run_coop(INTERLEAVE, RandomPolicy(seed=s)))
                for s in range(12)}
        assert len(seen) > 1

    def test_results_match_thread_semantics(self):
        text = """
        def main():
            total = 0
            parallel for i in [1 ... 50]:
                lock total:
                    total += i
            print(total)
        """
        assert run_coop(text, RoundRobinPolicy(1)) == ["1275"]
        assert run_coop(text, RandomPolicy(3)) == ["1275"]


class TestRaceExposure:
    """The pedagogical core: schedules that make the Figure III race bite."""

    RACY = """
    def main():
        largest = 0
        parallel for num in nums()
        print(largest)
    """

    def test_script_policy_produces_lost_update(self):
        # Two workers; worker 1 sees 90 first and pauses between its check
        # and its write while worker 2 writes 5: the final answer loses 90.
        text = """
        def main():
            largest = 0
            parallel for num in [90, 5]:
                if num > largest:
                    largest = num
            print(largest)
        """
        w1 = "worker 1 (parallel for, line 4)"
        w2 = "worker 2 (parallel for, line 4)"
        # w2 checks 5 > 0, w1 checks and writes 90, then w2's stale write of
        # 5 lands last — the classic lost update Figure III's lock prevents.
        schedule = [w2, w1, w1, w2]
        lost = run_coop(text, ScriptPolicy(schedule), num_workers=2)
        assert lost == ["5"]

    def test_same_program_with_lock_is_safe_under_any_schedule(self):
        text = """
        def main():
            largest = 0
            parallel for num in [90, 5]:
                if num > largest:
                    lock largest:
                        if num > largest:
                            largest = num
            print(largest)
        """
        for seed in range(10):
            assert run_coop(text, RandomPolicy(seed), num_workers=2) == ["90"]

    def test_race_demo_program_runs(self):
        lines = run_coop(RACE_DEMO, RoundRobinPolicy(1))
        assert len(lines) == 1  # some max-ish value; schedule-dependent


class TestDeadlockDetection:
    def test_opposite_lock_orders_detected(self):
        with pytest.raises(TetraDeadlockError, match="deadlock detected"):
            run_coop(DEADLOCK_DEMO, RoundRobinPolicy(1))

    def test_deadlock_message_names_locks(self):
        with pytest.raises(TetraDeadlockError, match="lock a|lock b"):
            run_coop(DEADLOCK_DEMO, RoundRobinPolicy(1))

    def test_clean_program_no_false_deadlock(self):
        text = """
        def main():
            parallel:
                lock a:
                    x = 1
                lock a:
                    y = 2
            print("ok")
        """
        assert run_coop(text, RoundRobinPolicy(1)) == ["ok"]

    def test_random_schedules_find_the_deadlock(self):
        # Under random schedules the deadlock is timing-dependent (exactly
        # as on real threads); across a batch of seeds it must show up at
        # least once, and every run must terminate rather than hang.
        detected = 0
        for seed in range(8):
            try:
                run_coop(DEADLOCK_DEMO, RandomPolicy(seed))
            except TetraDeadlockError:
                detected += 1
        assert detected >= 1


class TestScriptPolicy:
    def test_script_then_fallback(self):
        text = """
        def main():
            parallel:
                print("x")
                print("y")
        """
        t1 = "parallel thread 1 (line 4)"
        t2 = "parallel thread 2 (line 5)"
        assert run_coop(text, ScriptPolicy([t2, t1])) == ["y", "x"]
        assert run_coop(text, ScriptPolicy([t1, t2])) == ["x", "y"]

    def test_unknown_labels_skipped(self):
        lines = run_coop(INTERLEAVE, ScriptPolicy(["no such thread"]))
        assert sorted(lines) == ["a", "b", "c"]


class TestPolicyValidation:
    def test_round_robin_requires_positive_interval(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(0)

    def test_switch_every_two(self):
        text = """
        def main():
            parallel:
                print("p")
                print("q")
            print("done")
        """
        lines = run_coop(text, RoundRobinPolicy(2))
        assert sorted(lines[:2]) == ["p", "q"]
        assert lines[2] == "done"
