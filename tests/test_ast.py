"""Tests for AST infrastructure: traversal, equality, dumping, visitors."""

from repro.parser import parse_expression, parse_source
from repro.tetra_ast import (
    BinOp,
    Call,
    IntLiteral,
    Name,
    NodeTransformer,
    NodeVisitor,
    count_nodes,
    dump,
    node_equal,
    walk,
)


SAMPLE = """\
def double(x int) int:
    return x * 2

def main():
    print(double(21))
"""


class TestWalk:
    def test_walk_yields_all_nodes(self):
        program = parse_source(SAMPLE)
        kinds = {type(n).__name__ for n in walk(program)}
        assert {"Program", "FunctionDef", "Param", "Return", "BinOp",
                "Name", "IntLiteral", "Call"} <= kinds

    def test_count_nodes_positive(self):
        assert count_nodes(parse_expression("1 + 2 * 3")) == 5

    def test_children_of_leaf(self):
        leaf = parse_expression("x")
        assert list(leaf.children()) == []


class TestNodeEqual:
    def test_identical_parses_equal(self):
        assert node_equal(parse_source(SAMPLE), parse_source(SAMPLE))

    def test_spans_ignored(self):
        spaced = SAMPLE.replace("def main", "\n\ndef main")
        assert node_equal(parse_source(SAMPLE), parse_source(spaced))

    def test_value_difference_detected(self):
        other = SAMPLE.replace("21", "22")
        assert not node_equal(parse_source(SAMPLE), parse_source(other))

    def test_structure_difference_detected(self):
        other = SAMPLE.replace("x * 2", "x + 2")
        assert not node_equal(parse_source(SAMPLE), parse_source(other))

    def test_different_node_types(self):
        assert not node_equal(parse_expression("1"), parse_expression("x"))


class TestDump:
    def test_dump_mentions_node_types_and_values(self):
        text = dump(parse_source(SAMPLE))
        assert "FunctionDef" in text
        assert "name='double'" in text
        assert "IntLiteral" in text

    def test_dump_with_spans(self):
        text = dump(parse_source(SAMPLE), include_spans=True)
        assert "@1:" in text

    def test_dump_indents_children(self):
        text = dump(parse_expression("f(1)"))
        lines = text.split("\n")
        assert lines[0].startswith("Call")
        assert lines[1].startswith("  ")


class TestVisitors:
    def test_visitor_dispatch(self):
        seen = []

        class Collector(NodeVisitor):
            def visit_IntLiteral(self, node):
                seen.append(node.value)

            def visit_Call(self, node):
                seen.append(node.func)
                self.generic_visit(node)

        Collector().visit(parse_source(SAMPLE))
        assert "print" in seen
        assert 21 in seen

    def test_generic_visit_recurses(self):
        count = 0

        class Counter(NodeVisitor):
            def generic_visit(self, node):
                nonlocal count
                count += 1
                super().generic_visit(node)

        Counter().visit(parse_expression("1 + 2"))
        assert count == 3

    def test_transformer_replaces_nodes(self):
        class ConstantFold(NodeTransformer):
            def visit_BinOp(self, node):
                self.generic_visit(node)
                if (isinstance(node.left, IntLiteral)
                        and isinstance(node.right, IntLiteral)):
                    from repro.tetra_ast import BinaryOp

                    if node.op is BinaryOp.ADD:
                        return IntLiteral(value=node.left.value + node.right.value)
                return node

        result = ConstantFold().visit(parse_expression("1 + 2"))
        assert isinstance(result, IntLiteral)
        assert result.value == 3

    def test_transformer_in_statement_lists(self):
        program = parse_source("def main():\n    x = 1 + 2\n")

        class Fold(NodeTransformer):
            def visit_BinOp(self, node):
                return IntLiteral(value=3)

        Fold().visit(program)
        stmt = program.functions[0].body.statements[0]
        assert isinstance(stmt.value, IntLiteral)
