"""The canonical paper programs: correct output on every backend.

These are the repository's ground-truth integration tests — the exact
listings from the paper (Figures I-III) plus the reconstructed §IV
evaluation workloads.
"""

import pytest

from repro.api import run_source
from repro.errors import TetraDeadlockError
from repro.programs import (
    ALL_PROGRAMS,
    BACKGROUND_DEMO,
    DEADLOCK_DEMO,
    FIGURE_1_FACTORIAL,
    FIGURE_2_PARALLEL_SUM,
    FIGURE_3_PARALLEL_MAX,
    PRIME_COUNTS,
    RACE_DEMO,
    primes_program,
    tsp_program,
)


class TestFigure1:
    def test_factorial_of_5(self, any_backend):
        result = run_source(FIGURE_1_FACTORIAL, inputs=["5"],
                            backend=any_backend)
        assert result.output_lines() == ["enter n: ", "5! = 120"]

    def test_factorial_of_0(self):
        result = run_source(FIGURE_1_FACTORIAL, inputs=["0"])
        assert result.output_lines()[-1] == "0! = 1"

    def test_factorial_of_20(self):
        result = run_source(FIGURE_1_FACTORIAL, inputs=["20"])
        assert result.output_lines()[-1] == "20! = 2432902008176640000"


class TestFigure2:
    def test_sums_1_to_100(self, any_backend):
        result = run_source(FIGURE_2_PARALLEL_SUM, backend=any_backend)
        assert result.output_lines() == ["5050"]


class TestFigure3:
    def test_finds_max(self, any_backend):
        result = run_source(FIGURE_3_PARALLEL_MAX, backend=any_backend)
        assert result.output_lines() == ["96"]


class TestEvaluationWorkloads:
    @pytest.mark.parametrize("limit", [100, 1000])
    def test_primes_counts(self, limit):
        result = run_source(primes_program(limit))
        assert result.output_lines() == [str(PRIME_COUNTS[limit])]

    def test_primes_same_on_all_backends(self, any_backend):
        result = run_source(primes_program(200), backend=any_backend)
        assert result.output_lines() == ["46"]

    def test_tsp_deterministic(self, any_backend):
        result = run_source(tsp_program(6), backend=any_backend)
        expected = run_source(tsp_program(6), backend="sequential")
        assert result.output_lines() == expected.output_lines()

    def test_tsp_matches_bruteforce_oracle(self):
        # Oracle: brute-force permutations in Python with the same
        # synthetic distance function.
        from itertools import permutations

        def dist(a, b):
            lo, hi = min(a, b), max(a, b)
            return (lo * 7 + hi * 13) % 29 + 1

        n = 6
        best = min(
            sum(dist(a, b) for a, b in zip((0,) + perm, perm + (0,)))
            for perm in permutations(range(1, n))
        )
        result = run_source(tsp_program(n))
        assert result.output_lines() == [str(best)]

    def test_tsp_requires_three_cities(self):
        with pytest.raises(ValueError):
            tsp_program(2)


class TestTeachingPrograms:
    def test_race_demo_completes(self):
        # On the thread backend the result is schedule-dependent but always
        # one of the array's values.
        result = run_source(RACE_DEMO)
        assert result.output_lines()[0] in {"90", "1", "2", "3"}

    def test_deadlock_demo_terminates(self):
        # Either the schedule dodges the deadlock (fine) or it is detected
        # and diagnosed — it must never hang.
        try:
            run_source(DEADLOCK_DEMO)
        except TetraDeadlockError as exc:
            assert "lock" in str(exc)

    def test_background_demo(self):
        result = run_source(BACKGROUND_DEMO)
        lines = result.output_lines()
        assert "main keeps going" in lines
        assert sum(1 for l in lines if l.startswith("background")) == 3


class TestExtensionPrograms:
    def test_word_count_on_all_backends(self, any_backend):
        from repro.programs import WORD_COUNT_DEMO

        result = run_source(WORD_COUNT_DEMO, backend=any_backend)
        lines = result.output_lines()
        assert "the: 3" in lines
        assert "fox: 2" in lines
        assert lines[-1].startswith("lookup failed")

    def test_bank_account_on_all_backends(self, any_backend):
        from repro.programs import BANK_DEMO

        result = run_source(BANK_DEMO, backend=any_backend)
        assert result.output_lines() == [
            "team has 1000",
            "Account(owner: team, balance: 1000)",
        ]


class TestProgramCatalog:
    def test_all_programs_compile(self):
        from repro.api import check_source

        for name, text in ALL_PROGRAMS.items():
            assert check_source(text) == [], f"{name} has diagnostics"

    def test_examples_directory_in_sync(self):
        """examples/tetra/*.ttr must match the canonical sources."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        for name, text in ALL_PROGRAMS.items():
            path = root / "examples" / "tetra" / f"{name}.ttr"
            assert path.exists(), f"missing {path}"
            assert path.read_text() == text, f"{path} is stale"
