"""Unparser tests: fidelity and minimal parenthesization."""

import textwrap

import pytest

from repro.parser import parse_expression, parse_source
from repro.tetra_ast import node_equal, unparse
from repro.programs import ALL_PROGRAMS


def roundtrip_program(text: str) -> None:
    program = parse_source(text)
    again = parse_source(unparse(program))
    assert node_equal(program, again), unparse(program)


def expr_text(text: str) -> str:
    return unparse(parse_expression(text))


class TestExpressionRendering:
    def test_literal_forms(self):
        assert expr_text("42") == "42"
        assert expr_text("4.5") == "4.5"
        assert expr_text("true") == "true"
        assert expr_text("false") == "false"
        assert expr_text('"hi"') == '"hi"'

    def test_string_escapes_render(self):
        assert expr_text(r'"a\nb"') == r'"a\nb"'
        assert expr_text(r'"say \"hi\""') == r'"say \"hi\""'

    def test_no_redundant_parens(self):
        assert expr_text("1 + 2 * 3") == "1 + 2 * 3"
        assert expr_text("a and b or c") == "a and b or c"

    def test_needed_parens_preserved(self):
        assert expr_text("(1 + 2) * 3") == "(1 + 2) * 3"
        assert expr_text("a and (b or c)") == "a and (b or c)"
        assert expr_text("-(a + b)") == "-(a + b)"

    def test_left_assoc_subtraction_parens(self):
        # 10 - (4 - 3) needs parens; (10 - 4) - 3 does not.
        assert expr_text("10 - (4 - 3)") == "10 - (4 - 3)"
        assert expr_text("10 - 4 - 3") == "10 - 4 - 3"

    def test_power_right_assoc_rendering(self):
        assert expr_text("2 ** 3 ** 2") == "2 ** 3 ** 2"
        assert expr_text("(2 ** 3) ** 2") == "(2 ** 3) ** 2"

    def test_range_literal(self):
        assert expr_text("[1...100]") == "[1 ... 100]"

    def test_array_and_index(self):
        assert expr_text("[1, 2, 3][0]") == "[1, 2, 3][0]"
        assert expr_text("m[i][j]") == "m[i][j]"

    def test_call(self):
        assert expr_text("f(1, g(x), [2])") == "f(1, g(x), [2])"

    def test_not_spacing(self):
        assert expr_text("not a") == "not a"
        assert expr_text("not (a or b)") == "not (a or b)"


class TestProgramRoundTrips:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_canonical_programs(self, name):
        roundtrip_program(ALL_PROGRAMS[name])

    def test_every_statement_kind(self):
        roundtrip_program(textwrap.dedent("""
            def f(a int, b [real]) string:
                x = 1
                x += 2
                b[0] = 1.5
                if x > 0:
                    pass
                elif x < 0:
                    x = 0
                else:
                    x = 1
                while x < 10:
                    x += 1
                    if x == 5:
                        break
                    continue
                for i in [1 ... 3]:
                    x += i
                parallel:
                    x = 1
                    x = 2
                background:
                    x = 3
                parallel for j in b:
                    lock guard:
                        x += 1
                return "done"

            def main():
                s = f(1, [1.0, 2.0])
                print(s)
        """))

    def test_empty_else_and_nesting(self):
        roundtrip_program(textwrap.dedent("""
            def main():
                if true:
                    if false:
                        pass
                    else:
                        pass
        """))

    def test_unparse_idempotent(self):
        text = ALL_PROGRAMS["figure2_parallel_sum"]
        once = unparse(parse_source(text))
        twice = unparse(parse_source(once))
        assert once == twice
