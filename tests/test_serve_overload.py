"""Overload resilience of ``tetra serve``: admission control and load
shedding, the poison-program circuit breaker, transient-infra retries,
graceful drain, crash-atomic cache persistence, and a seeded serve-layer
chaos soak asserting the standing invariants."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import (
    AdmissionController,
    CircuitBreaker,
    ExecutionService,
    ResultCache,
    ServeConfig,
    ServeError,
    ServeFaultPlan,
    TetraServer,
)
from repro.serve.chaos import POISON_MARKER

HELLO = 'def main():\n    print("hello")\n'
COUNT = "def main():\n    for i in [0 ... 3]:\n        print(i)\n"
SPIN = "def main():\n    x = 0\n    while true:\n        x = x + 1\n"
#: Compiles fine; under an armed chaos plan the worker is killed the
#: moment user code starts, deterministically — a poison pill.
POISON = (
    f"def main():\n    # {POISON_MARKER}\n"
    "    x = 0\n    while true:\n        x = x + 1\n"
)


def _cfg(**overrides) -> ServeConfig:
    defaults = dict(port=0, workers=2, rate=10_000.0, burst=10_000,
                    max_concurrent=64, watchdog_grace=2.0,
                    default_time_limit=10.0, result_cache_size=0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _spin_up(service, source=SPIN):
    """Occupy one worker with an endless run; returns its handle once
    the run has actually left the queue (a worker pid is assigned)."""
    handle = service.submit({"source": source, "time_limit": 30.0})
    deadline = time.monotonic() + 10.0
    while handle.worker_pid is None and time.monotonic() < deadline:
        time.sleep(0.01)
    assert handle.worker_pid is not None
    return handle


# ----------------------------------------------------------------------
# Admission controller (unit)
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_idle_worker_always_admits(self):
        ctl = AdmissionController(max_queue=4)
        ctl.check({"workers": 2, "busy": 1, "idle": 1, "pending": 0,
                   "avg_run_seconds": 100.0}, queue_deadline=0.001)

    def test_full_queue_sheds_with_retry_after(self):
        ctl = AdmissionController(max_queue=4)
        occ = {"workers": 2, "busy": 2, "idle": 0, "pending": 4,
               "avg_run_seconds": 0.5}
        with pytest.raises(ServeError) as err:
            ctl.check(occ, queue_deadline=60.0)
        assert err.value.status == 503
        assert err.value.retry_after >= 1.0
        assert "queue is full" in err.value.message
        assert ctl.stats()["shed_queue_full"] == 1

    def test_unreachable_deadline_sheds(self):
        ctl = AdmissionController(max_queue=32)
        occ = {"workers": 1, "busy": 1, "idle": 0, "pending": 10,
               "avg_run_seconds": 2.0}  # ~22s estimated wait
        with pytest.raises(ServeError) as err:
            ctl.check(occ, queue_deadline=5.0)
        assert err.value.status == 503
        assert "deadline" in err.value.message
        assert ctl.stats()["shed_deadline"] == 1

    def test_estimated_wait_math(self):
        wait = AdmissionController.estimated_wait(
            {"workers": 4, "busy": 4, "pending": 8,
             "avg_run_seconds": 1.0})
        assert wait == pytest.approx(3.0)

    def test_shed_decision_is_fast(self):
        ctl = AdmissionController(max_queue=1)
        occ = {"workers": 1, "busy": 1, "idle": 0, "pending": 1,
               "avg_run_seconds": 0.5}
        t0 = time.monotonic()
        for _ in range(100):
            with pytest.raises(ServeError):
                ctl.check(occ, queue_deadline=10.0)
        assert (time.monotonic() - t0) / 100 < 0.05  # well under 50 ms


# ----------------------------------------------------------------------
# Circuit breaker (unit, fake clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_threshold_failures_open_the_breaker(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=3, backoff=30.0, clock=clock)
        sha = "a" * 64
        for _ in range(2):
            br.record_failure(sha, "crashed its sandbox worker")
            br.admit(sha)  # still closed
        br.record_failure(sha, "crashed its sandbox worker")
        assert br.state(sha) == "open"
        with pytest.raises(ServeError) as err:
            br.admit(sha)
        assert err.value.status == 503
        assert sha[:12] in err.value.message
        assert "quarantined" in err.value.message
        assert err.value.retry_after is not None

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, backoff=30.0, clock=clock)
        sha = "b" * 64
        br.record_failure(sha, "crashed its sandbox worker")
        clock.now += 31.0
        br.admit(sha)  # the probe
        assert br.state(sha) == "half-open"
        with pytest.raises(ServeError):
            br.admit(sha)  # second caller fails fast
        br.record_success(sha)
        assert br.state(sha) == "closed"  # forgotten entirely
        assert br.stats()["programs_tracked"] == 0
        assert br.stats()["recovered"] == 1

    def test_failed_probe_reopens_with_doubled_backoff(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, backoff=10.0, clock=clock)
        sha = "c" * 64
        br.record_failure(sha, "crashed its sandbox worker")
        clock.now += 11.0
        br.admit(sha)
        br.record_failure(sha, "crashed its sandbox worker")
        assert br.state(sha) == "open"
        stats = br.stats()["per_program"][sha[:12]]
        assert stats["trips"] == 2
        assert stats["retry_in"] == pytest.approx(20.0)

    def test_released_probe_frees_the_slot(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, backoff=10.0, clock=clock)
        sha = "d" * 64
        br.record_failure(sha, "crashed its sandbox worker")
        clock.now += 11.0
        br.admit(sha)
        br.release(sha)  # the probe never reached an execution verdict
        br.admit(sha)    # so the next caller may probe instead

    def test_eviction_never_drops_an_open_breaker(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, backoff=1e6, clock=clock,
                            max_programs=2)
        br.record_failure("open1" + "x" * 59, "crashed its sandbox worker")
        # A single sub-threshold failure leaves a closed entry...
        br2 = CircuitBreaker(threshold=2, backoff=1e6, clock=clock,
                             max_programs=2)
        br2.record_failure("openA" + "x" * 59, "crashed its sandbox worker")
        br2.record_failure("openA" + "x" * 59, "crashed its sandbox worker")
        br2.record_failure("closB" + "x" * 59, "crashed its sandbox worker")
        br2.record_failure("newC" + "x" * 60, "crashed its sandbox worker")
        stats = br2.stats()
        assert stats["evicted"] == 1
        assert ("openA" + "x" * 59)[:12] in stats["per_program"]  # pinned


# ----------------------------------------------------------------------
# Service-level shedding and queue deadlines
# ----------------------------------------------------------------------
class TestShedding:
    def test_burst_beyond_capacity_sheds_fast_without_quota_cost(self):
        svc = ExecutionService(_cfg(workers=1, max_queue=0))
        try:
            spin = _spin_up(svc)
            shed = 0
            for _ in range(20):
                t0 = time.monotonic()
                with pytest.raises(ServeError) as err:
                    svc.submit({"source": HELLO}, tenant="bursty")
                assert time.monotonic() - t0 < 0.05
                assert err.value.status == 503
                assert err.value.retry_after is not None
                shed += 1
            assert shed == 20
            # Shed requests never charged the tenant's quota.
            assert svc.quotas.active("bursty") == 0
            stats = svc.stats()["overload"]["admission"]
            assert stats["shed_queue_full"] + stats["shed_deadline"] == 20
            assert svc.cancel(spin.id)
        finally:
            svc.shutdown()

    def test_queued_request_shed_when_deadline_passes(self):
        svc = ExecutionService(_cfg(workers=1, max_queue=8))
        try:
            spin = _spin_up(svc)
            # Admission estimate (~one avg run) fits 0.3s, but the spin
            # run never yields the worker — the sweep must shed it.
            handle = svc.submit({"source": HELLO, "queue_deadline": 0.3},
                                tenant="patient")
            result = handle.wait(10.0)
            assert result["status"] == "shed"
            assert result["http_status"] == 503
            assert result["retry_after"] >= 1.0
            assert "queue deadline" in result["error"]
            assert svc.pool.stats()["shed_expired"] == 1
            # The shed released the tenant's quota slot.
            deadline = time.monotonic() + 5.0
            while svc.quotas.active("patient") and \
                    time.monotonic() < deadline:
                time.sleep(0.01)
            assert svc.quotas.active("patient") == 0
            assert svc.cancel(spin.id)
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Poison programs and the breaker, end to end
# ----------------------------------------------------------------------
def _quiet_plan(seed=0, **overrides):
    """A chaos plan with every random fault off — only the deterministic
    poison marker (and any explicitly enabled site) fires."""
    defaults = dict(kill_pre_dispatch_prob=0.0, kill_mid_run_prob=0.0,
                    pipe_delay_prob=0.0, sever_pipe_prob=0.0,
                    drop_client_prob=0.0, compile_stall_prob=0.0)
    defaults.update(overrides)
    return ServeFaultPlan(seed, **defaults)


class TestPoisonBreaker:
    def test_poison_program_gets_quarantined_and_fails_fast(self):
        svc = ExecutionService(
            _cfg(workers=1, breaker_threshold=2, breaker_backoff=300.0),
            chaos=_quiet_plan())
        try:
            for _ in range(2):
                result = svc.run({"source": POISON, "time_limit": 20.0})
                assert result["exit_code"] == 1
                assert result["http_status"] == 500
                assert "died mid-run" in result["error"]
            import hashlib
            sha = hashlib.sha256(POISON.encode()).hexdigest()
            assert svc.breaker.state(sha) == "open"
            # Fail fast now — no sandbox, named diagnostic, Retry-After.
            t0 = time.monotonic()
            with pytest.raises(ServeError) as err:
                svc.submit({"source": POISON})
            assert time.monotonic() - t0 < 0.05
            assert err.value.status == 503
            assert "quarantined" in err.value.message
            breaker = svc.stats()["overload"]["breaker"]
            assert breaker["open"] == 1
            assert breaker["fast_fails"] >= 1
            # Executions stopped at the threshold.
            assert svc.chaos.stats()["counts"]["poison_kill"] == 2
            # The pool healed: a normal program still runs.
            assert svc.run({"source": HELLO})["status"] == "ok"
        finally:
            svc.shutdown()

    def test_probe_after_backoff_recovers_a_healthy_program(self):
        clock = FakeClock()
        svc = ExecutionService(_cfg(workers=1, breaker_threshold=1))
        svc.breaker = CircuitBreaker(threshold=1, backoff=30.0,
                                     clock=clock)
        try:
            import hashlib
            sha = hashlib.sha256(HELLO.encode()).hexdigest()
            svc.breaker.record_failure(sha, "crashed its sandbox worker")
            with pytest.raises(ServeError):
                svc.submit({"source": HELLO})
            clock.now += 31.0
            # Half-open: the probe runs for real, succeeds, and closes.
            result = svc.run({"source": HELLO})
            assert result["status"] == "ok"
            assert svc.breaker.stats()["programs_tracked"] == 0
            assert svc.breaker.stats()["recovered"] == 1
        finally:
            svc.shutdown()

    def test_watchdog_kill_counts_as_breaker_failure(self):
        svc = ExecutionService(
            _cfg(workers=1, watchdog_grace=0.5, breaker_threshold=1,
                 breaker_backoff=300.0))
        try:
            result = svc.run({"source": SPIN, "time_limit": 0.2,
                              "backend": "coop"})
            # coop clock ticks virtual units; the host watchdog kills it.
            assert result["status"] in ("time", "limit")
            import hashlib
            sha = hashlib.sha256(SPIN.encode()).hexdigest()
            if result.get("cause") == "watchdog":
                assert svc.breaker.state(sha) == "open"
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Transient-infra retries
# ----------------------------------------------------------------------
class _KillFirstDispatches(ServeFaultPlan):
    """Deterministic chaos: kill the worker on the first N dispatches."""

    def __init__(self, kills: int):
        super().__init__(0, kill_pre_dispatch_prob=0.0,
                         kill_mid_run_prob=0.0, pipe_delay_prob=0.0,
                         sever_pipe_prob=0.0, drop_client_prob=0.0,
                         compile_stall_prob=0.0)
        self._kills = kills

    def kill_pre_dispatch(self) -> bool:
        with self._mu:
            if self._kills <= 0:
                return False
            self._kills -= 1
            self.counts["kill_pre_dispatch"] = \
                self.counts.get("kill_pre_dispatch", 0) + 1
        return True


class TestInfraRetries:
    def test_pre_start_worker_death_is_retried_transparently(self):
        svc = ExecutionService(_cfg(workers=1, infra_retries=2),
                               chaos=_KillFirstDispatches(1))
        try:
            result = svc.run({"source": HELLO}, timeout=30.0)
            assert result["status"] == "ok"
            assert result["output"] == "hello\n"
            assert svc.pool.stats()["infra_retried"] >= 1
            # Never blamed on the program.
            assert svc.stats()["overload"]["breaker"][
                "programs_tracked"] == 0
        finally:
            svc.shutdown()

    def test_exhausted_retries_surface_as_infra_500_not_breaker(self):
        svc = ExecutionService(
            _cfg(workers=1, infra_retries=1),
            chaos=_KillFirstDispatches(10**6))
        try:
            handle = svc.submit({"source": HELLO})
            result = handle.wait(30.0)
            assert result["cause"] == "infra"
            assert result["http_status"] == 500
            assert "not the program's fault" in result["error"]
            assert svc.stats()["overload"]["breaker"][
                "programs_tracked"] == 0
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_inflight_cancels_stragglers_saves_cache(
            self, tmp_path):
        cache_file = str(tmp_path / "results.json")
        svc = ExecutionService(_cfg(workers=2, result_cache_size=64,
                                    result_cache_path=cache_file))
        try:
            # One cacheable result to persist, one endless run to cancel.
            assert svc.run({"source": HELLO,
                            "backend": "sequential"})["status"] == "ok"
            spin = _spin_up(svc)
            drained = svc.begin_drain(grace=1.0)
            # Admissions stop instantly.
            with pytest.raises(ServeError) as err:
                svc.submit({"source": COUNT})
            assert err.value.status == 503
            assert "draining" in err.value.message
            assert drained.wait(15.0)
            spin_result = spin.wait(1.0)
            assert spin_result["status"] == "cancelled"
            assert "draining" in spin_result["error"]
            assert svc.drain_cancelled >= 1
            # The cache file landed, valid JSON, with the pure result.
            with open(cache_file, encoding="utf-8") as fh:
                pairs = json.load(fh)
            assert any(pair[1].get("output") == "hello\n"
                       for pair in pairs)
        finally:
            svc.shutdown()

    def test_drain_is_idempotent_and_waits_for_short_runs(self):
        svc = ExecutionService(_cfg(workers=1))
        try:
            handle = svc.submit({"source": COUNT})
            ev1 = svc.begin_drain(grace=10.0)
            ev2 = svc.begin_drain(grace=10.0)
            assert ev1 is ev2
            assert ev1.wait(15.0)
            # The in-flight run finished normally, not cancelled.
            assert handle.wait(1.0)["status"] == "ok"
            assert svc.drain_cancelled == 0
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# HTTP layer: /api/drain, draining healthz, queued-stream disconnect
# ----------------------------------------------------------------------
def _boot_server(cfg=None, chaos=None):
    svc = ExecutionService(cfg or _cfg(), chaos=chaos)
    srv = TetraServer(("127.0.0.1", 0), svc)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return svc, srv, thread


class TestHTTPOverload:
    def test_drain_endpoint_flips_healthz_and_stops_the_loop(self):
        import urllib.request
        svc, srv, thread = _boot_server()
        host, port = srv.server_address[:2]
        try:
            req = urllib.request.Request(
                f"http://{host}:{port}/api/drain", data=b"{}",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=10) as resp:
                assert resp.status == 202
            # healthz answers 503-draining while the drain runs... but
            # an idle service drains fast, so accept either the 503 or
            # a connection refusal once the listener stopped.
            assert svc.drained.wait(15.0)
            thread.join(timeout=10.0)
            assert not thread.is_alive()  # serve_forever returned
        finally:
            srv.shutdown()
            srv.server_close()
            svc.shutdown()

    def test_healthz_reports_draining(self):
        import urllib.error
        import urllib.request
        svc, srv, thread = _boot_server(_cfg(workers=1))
        host, port = srv.server_address[:2]
        try:
            spin = _spin_up(svc)  # keeps the drain from finishing
            svc.begin_drain(grace=5.0)
            try:
                with urllib.request.urlopen(
                        f"http://{host}:{port}/healthz", timeout=10):
                    raise AssertionError("healthz should be 503")
            except urllib.error.HTTPError as err:
                assert err.code == 503
                assert json.loads(err.read())["draining"] is True
                assert err.headers.get("Retry-After") is not None
            svc.cancel(spin.id)
            assert svc.drained.wait(15.0)
        finally:
            srv.shutdown()
            srv.server_close()
            svc.shutdown()
            thread.join(timeout=5.0)

    def test_stream_client_disconnect_while_queued_releases_slot(self):
        """Regression: a client that hangs up while its run is still
        *queued* (pre-dispatch) must be unregistered and its quota slot
        released — before this fix the stream thread blocked forever on
        an event queue no worker would ever feed."""
        svc, srv, thread = _boot_server(_cfg(workers=1, max_queue=8))
        host, port = srv.server_address[:2]
        try:
            spin = _spin_up(svc)  # the lone worker is now busy
            body = json.dumps({"source": HELLO,
                               "queue_deadline": 30.0}).encode()
            sock = socket.create_connection((host, port), timeout=10)
            sock.sendall(
                b"POST /api/stream HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"X-Tetra-Tenant: ghost\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
            # Wait for the start event — the request is admitted and
            # queued (the worker is occupied by the spin run).
            buf = b""
            while b'"type": "start"' not in buf \
                    and b'"type":"start"' not in buf:
                chunk = sock.recv(4096)
                assert chunk, "stream closed before start event"
                buf += chunk
            assert svc.quotas.active("ghost") == 1
            sock.close()  # the browser vanishes
            deadline = time.monotonic() + 10.0
            while svc.quotas.active("ghost") and \
                    time.monotonic() < deadline:
                time.sleep(0.05)
            assert svc.quotas.active("ghost") == 0
            # The queued run was cancelled, not left for the worker.
            assert svc.pool.stats()["pending"] == 0
            svc.cancel(spin.id)
        finally:
            srv.shutdown()
            srv.server_close()
            svc.shutdown()
            thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Crash-atomic result-cache persistence
# ----------------------------------------------------------------------
def _save_and_die(path):
    """Child process: start a save whose write dies midway (SIGKILL),
    as a SIGTERM'd server's last gasp might."""
    cache = ResultCache(capacity=8, path=path)
    cache.put(("doomed",), {"status": "ok", "output": "new"})
    import repro.serve.cache as cache_mod

    def dying_dump(obj, fh, *a, **k):
        fh.write('[[["doomed"], {"status"')  # truncated JSON
        fh.flush()
        os.kill(os.getpid(), signal.SIGKILL)

    cache_mod.json.dump = dying_dump
    cache.save()


class TestCachePersistence:
    def test_kill_mid_save_never_truncates_the_cache_file(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=8, path=path)
        cache.put(("good",), {"status": "ok", "output": "old"})
        cache.save()
        with open(path, encoding="utf-8") as fh:
            before = fh.read()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        proc = ctx.Process(target=_save_and_die, args=(path,))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == -signal.SIGKILL
        # The original file is byte-identical — never truncated.
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == before
        reloaded = ResultCache(capacity=8, path=path)
        assert reloaded.get(("good",)) == {"status": "ok",
                                           "output": "old"}

    def test_concurrent_saves_serialize(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = ResultCache(capacity=64, path=path)
        for i in range(16):
            cache.put((f"k{i}",), {"status": "ok", "output": str(i)})
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: cache.save(), range(32)))
        reloaded = ResultCache(capacity=64, path=path)
        assert len(reloaded) == 16


# ----------------------------------------------------------------------
# Quota accounting under shedding and retries (property-style)
# ----------------------------------------------------------------------
class TestQuotaAccounting:
    @pytest.mark.parametrize("burst_size", [8, 24])
    def test_every_admit_is_released_across_a_shedding_burst(
            self, burst_size):
        svc = ExecutionService(_cfg(workers=2, max_queue=2))
        try:
            outcomes = {"ok": 0, "shed": 0, "error": 0}

            def one(i):
                tenant = f"t{i % 3}"
                try:
                    result = svc.run(
                        {"source": HELLO, "queue_deadline": 5.0},
                        tenant=tenant, timeout=30.0)
                    outcomes["shed" if result.get("status") == "shed"
                             else "ok" if result["status"] == "ok"
                             else "error"] += 1
                except ServeError:
                    outcomes["shed"] += 1

            with ThreadPoolExecutor(max_workers=burst_size) as pool:
                list(pool.map(one, range(burst_size)))
            # Invariant: whatever mix of served / shed-at-admission /
            # shed-in-queue happened, every slot was handed back.
            for tenant in ("t0", "t1", "t2"):
                assert svc.quotas.active(tenant) == 0
            assert svc.quotas.stats()["active_runs"] == 0
            assert outcomes["ok"] >= 1  # the burst wasn't all shed
        finally:
            svc.shutdown()

    def test_slots_released_when_every_dispatch_needs_an_infra_retry(
            self):
        svc = ExecutionService(_cfg(workers=1, infra_retries=2),
                               chaos=_KillFirstDispatches(2))
        try:
            # Two kills burn both retries; the third dispatch runs.
            result = svc.run({"source": HELLO}, tenant="flaky",
                             timeout=30.0)
            assert result["status"] == "ok"
            assert svc.pool.stats()["infra_retried"] == 2
            assert svc.quotas.active("flaky") == 0
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# The seeded chaos soak (in-process twin of the CI soak script)
# ----------------------------------------------------------------------
class TestChaosSoak:
    def test_soak_invariants_under_seeded_chaos(self):
        threads_before = threading.active_count()
        plan = ServeFaultPlan(1234, kill_pre_dispatch_prob=0.03,
                              kill_mid_run_prob=0.02,
                              pipe_delay_prob=0.05,
                              sever_pipe_prob=0.01,
                              drop_client_prob=0.0,  # no HTTP layer here
                              compile_stall_prob=0.05)
        svc = ExecutionService(
            _cfg(workers=2, max_queue=8, result_cache_size=64,
                 breaker_threshold=3, breaker_backoff=600.0,
                 infra_retries=2, watchdog_grace=2.0),
            chaos=plan)
        poison_submitted = 0
        answered = []
        lock = threading.Lock()
        try:
            def one(i):
                nonlocal poison_submitted
                if i % 10 == 7:
                    source, limit = POISON, 15.0
                    with lock:
                        poison_submitted += 1
                elif i % 3 == 0:
                    source, limit = COUNT, 10.0
                else:
                    source, limit = HELLO, 10.0
                try:
                    result = svc.run(
                        {"source": source, "time_limit": limit,
                         "queue_deadline": 30.0},
                        tenant=f"t{i % 5}", timeout=60.0)
                    status = result.get("http_status") or 200
                except ServeError as err:
                    status = err.status
                with lock:
                    answered.append(status)

            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(one, range(200)))

            # 1. Every request was answered — nothing hung.
            assert len(answered) == 200
            allowed = {200, 408, 409, 422, 499, 500, 503}
            assert set(answered) <= allowed
            # 2. Quota slots fully released.
            assert svc.quotas.stats()["active_runs"] == 0
            # 3. The poison program's executions were capped by the
            #    breaker at a small multiple of the threshold, far
            #    below its submission count.
            kills = svc.chaos.stats()["counts"].get("poison_kill", 0)
            assert poison_submitted >= 15
            assert 1 <= kills <= 8  # threshold + a probe or two
            breaker = svc.stats()["overload"]["breaker"]
            assert breaker["trips"] >= 1
            # 4. The pool healed and still serves clean work.  (HELLO
            #    itself may have been quarantined by random mid-run
            #    kills; a fresh program proves the *pool* is healthy.)
            fresh = 'def main():\n    print("still alive")\n'
            assert svc.run({"source": fresh},
                           timeout=30.0)["status"] == "ok"
            # 5. Nothing registered is left behind.
            assert svc.stats()["dedup"]["inflight_shared"] == 0
        finally:
            svc.shutdown()
        # 6. No wedged threads: everything the soak spawned wound down.
        deadline = time.monotonic() + 10.0
        while threading.active_count() > threads_before + 1 \
                and time.monotonic() < deadline:
            time.sleep(0.1)
        assert threading.active_count() <= threads_before + 2
