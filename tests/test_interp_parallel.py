"""Parallel-construct semantics across every backend.

These tests pin down the paper's §II semantics: parallel blocks join all
children, background blocks do not, parallel-for induction variables are
private, and locks provide mutual exclusion.  Each test runs on all four
backends (thread, sequential, coop, sim) via the ``any_backend`` fixture —
data-race-free programs must agree everywhere.
"""

import textwrap

import pytest

from conftest import run, run_output
from repro.api import run_source
from repro.errors import TetraRuntimeError, TetraThreadError
from repro.runtime import RuntimeConfig


class TestParallelBlock:
    def test_results_visible_after_join(self, any_backend):
        assert run("""
            def main():
                parallel:
                    a = 10
                    b = 20
                    c = 30
                print(a + b + c)
        """, backend=any_backend) == ["60"]

    def test_figure2_parallel_sum(self, any_backend):
        from repro.programs import FIGURE_2_PARALLEL_SUM

        result = run_source(FIGURE_2_PARALLEL_SUM, backend=any_backend)
        assert result.output_lines() == ["5050"]

    def test_children_share_spawner_locals(self, any_backend):
        assert run("""
            def main():
                base = 100
                parallel:
                    a = base + 1
                    b = base + 2
                print(a, " ", b)
        """, backend=any_backend) == ["101 102"]

    def test_single_statement_block(self, any_backend):
        assert run("""
            def main():
                parallel:
                    x = 7
                print(x)
        """, backend=any_backend) == ["7"]

    def test_nested_parallel_blocks(self, any_backend):
        assert run("""
            def main():
                parallel:
                    parallel:
                        a = 1
                        b = 2
                    c = 3
                print(a + b + c)
        """, backend=any_backend) == ["6"]

    def test_each_child_output_appears_once(self, any_backend):
        lines = run("""
            def main():
                parallel:
                    print("one")
                    print("two")
                    print("three")
        """, backend=any_backend)
        assert sorted(lines) == ["one", "three", "two"]

    def test_parallel_calls_with_loops(self, any_backend):
        assert run("""
            def count_to(n int) int:
                total = 0
                i = 1
                while i <= n:
                    total += i
                    i += 1
                return total

            def main():
                parallel:
                    a = count_to(100)
                    b = count_to(200)
                print(a, " ", b)
        """, backend=any_backend) == ["5050 20100"]

    def test_error_in_child_propagates(self, any_backend):
        with pytest.raises(TetraRuntimeError):
            run("""
                def main():
                    parallel:
                        x = [1][5]
                        y = 2
            """, backend=any_backend)


class TestBackgroundBlock:
    def test_background_work_completes_before_exit(self, any_backend):
        lines = run("""
            def main():
                background:
                    print("bg")
                print("fg")
        """, backend=any_backend)
        assert sorted(lines) == ["bg", "fg"]

    def test_background_does_not_block_spawner(self):
        # On the sequential backend background is synchronous, so only check
        # ordering guarantees that hold everywhere: both lines appear.
        lines = run("""
            def main():
                background:
                    x = 1
                print("immediately")
        """, backend="thread")
        assert "immediately" in lines


class TestParallelFor:
    def test_induction_variable_is_private(self, any_backend):
        # Workers write only through the accumulator; the induction variable
        # never leaks into the shared frame.
        assert run("""
            def main():
                total = 0
                parallel for i in [1 ... 100]:
                    lock total:
                        total += i
                print(total)
        """, backend=any_backend) == ["5050"]

    def test_body_writes_shared_array(self, any_backend):
        assert run("""
            def main():
                out = array(10, 0)
                parallel for i in [0 ... 9]:
                    out[i] = i * i
                print(out)
        """, backend=any_backend) == ["[0, 1, 4, 9, 16, 25, 36, 49, 64, 81]"]

    def test_empty_iteration_space(self, any_backend):
        assert run("""
            def main():
                parallel for i in [1 ... 0]:
                    print("never")
                print("done")
        """, backend=any_backend) == ["done"]

    def test_over_array_of_strings(self, any_backend):
        lines = run("""
            def main():
                parallel for word in ["a", "b", "c"]:
                    print(word)
        """, backend=any_backend)
        assert sorted(lines) == ["a", "b", "c"]

    def test_over_string_characters(self, any_backend):
        lines = run("""
            def main():
                parallel for c in "xyz":
                    print(c)
        """, backend=any_backend)
        assert sorted(lines) == ["x", "y", "z"]

    def test_cyclic_chunking_same_result(self):
        config = RuntimeConfig(num_workers=3, chunking="cyclic")
        assert run("""
            def main():
                total = 0
                parallel for i in [1 ... 10]:
                    lock total:
                        total += i
                print(total)
        """, config=config) == ["55"]

    def test_worker_count_capped_by_items(self):
        config = RuntimeConfig(num_workers=64)
        assert run("""
            def main():
                total = 0
                parallel for i in [1 ... 3]:
                    lock total:
                        total += i
                print(total)
        """, config=config) == ["6"]

    def test_figure3_parallel_max(self, any_backend):
        from repro.programs import FIGURE_3_PARALLEL_MAX

        result = run_source(FIGURE_3_PARALLEL_MAX, backend=any_backend)
        assert result.output_lines() == ["96"]

    def test_nested_parallel_for(self, any_backend):
        assert run("""
            def main():
                total = 0
                parallel for i in [1 ... 3]:
                    parallel for j in [1 ... 3]:
                        lock total:
                            total += i * j
                print(total)
        """, backend=any_backend) == ["36"]

    def test_sequential_for_inside_parallel_for(self, any_backend):
        # NOTE: only the induction variable is worker-private (paper §IV);
        # other body locals are shared, so per-iteration scratch state must
        # live in a called function's own activation.
        assert run("""
            def count_up_to(n int) int:
                sub = 0
                for j in [1 ... n]:
                    sub += 1
                return sub

            def main():
                total = 0
                parallel for i in [1 ... 4]:
                    lock total:
                        total += count_up_to(i)
                print(total)
        """, backend=any_backend) == ["10"]

    def test_body_locals_are_shared_not_private(self):
        # The flip side of the rule above, pinned down deterministically on
        # the sequential backend: a body local written by one worker is the
        # same variable every other worker sees.
        assert run("""
            def main():
                last = 0
                parallel for i in [1 ... 4]:
                    last = i
                print(last)
        """, backend="sequential") == ["4"]


class TestLocks:
    def test_lock_protects_counter(self):
        # With many increments through a lock the result is exact on the
        # thread backend despite real concurrency.
        config = RuntimeConfig(num_workers=8)
        assert run("""
            def main():
                count = 0
                parallel for i in [1 ... 400]:
                    lock count:
                        count += 1
                print(count)
        """, config=config) == ["400"]

    def test_different_lock_names_are_independent(self, any_backend):
        assert run("""
            def main():
                a = 0
                b = 0
                parallel:
                    lock one:
                        a = 1
                    lock two:
                        b = 2
                print(a + b)
        """, backend=any_backend) == ["3"]

    def test_lock_released_on_return_path(self, any_backend):
        # A lock inside a function that returns from within the block must
        # release (try/finally), or the second call would self-deadlock...
        assert run("""
            def grab() int:
                lock guard:
                    return 1

            def main():
                x = grab()
                y = grab()
                print(x + y)
        """, backend=any_backend) == ["2"]

    def test_lock_released_on_error(self, any_backend):
        # First call fails inside the lock; the lock must still be free.
        assert run("""
            def risky(xs [int], i int) int:
                lock guard:
                    return xs[i]

            def main():
                xs = [5]
                got = 0
                lock result:
                    got = risky(xs, 0)
                print(got)
        """, backend=any_backend) == ["5"]

    def test_self_reentry_diagnosed(self, any_backend):
        from repro.errors import TetraDeadlockError

        with pytest.raises(TetraDeadlockError, match="not re-entrant|already"):
            run("""
                def main():
                    lock a:
                        lock a:
                            print("never")
            """, backend=any_backend)

    def test_lock_name_shares_nothing_with_variable(self, any_backend):
        # Lock names live in their own namespace (paper §II): a lock named
        # 'x' coexists with a variable 'x'.
        assert run("""
            def main():
                x = 5
                lock x:
                    x = x + 1
                print(x)
        """, backend=any_backend) == ["6"]


class TestThreadBackendConcurrency:
    """Behaviours only observable with real threads."""

    def test_parallel_threads_interleave_prints_atomically(self):
        out = run_output("""
            def main():
                parallel for i in [1 ... 50]:
                    print("line ", i)
        """, config=RuntimeConfig(num_workers=8))
        lines = out.rstrip("\n").split("\n")
        assert len(lines) == 50
        # Every print call stays one atomic line ("line <n>").
        assert all(line.startswith("line ") for line in lines)

    def test_background_error_reported_at_exit(self):
        with pytest.raises(TetraRuntimeError):
            run("""
                def main():
                    background:
                        x = [1][9]
                    print("fg")
            """)

    def test_many_threads(self):
        config = RuntimeConfig(num_workers=16)
        assert run("""
            def main():
                total = 0
                parallel for i in [1 ... 1000]:
                    lock t:
                        total += 1
                print(total)
        """, config=config) == ["1000"]


class TestFailureAggregation:
    """Every failed worker is reported, not just the first one joined."""

    TWO_FAILING_CHILDREN = """
        def main():
            parallel:
                x = [1][7]
            # --
                y = [2][8]
            print("after")
    """

    def test_two_failing_parallel_children_both_reported(self):
        with pytest.raises(TetraThreadError) as info:
            run(self.TWO_FAILING_CHILDREN.replace("# --", ""))
        message = str(info.value)
        assert "2 parallel threads failed" in message
        assert "7" in message and "8" in message

    def test_two_failing_parallel_children_coop(self):
        with pytest.raises(TetraThreadError) as info:
            run(self.TWO_FAILING_CHILDREN.replace("# --", ""), backend="coop")
        message = str(info.value)
        assert "2 parallel threads failed" in message

    def test_one_failure_keeps_original_error_type(self, any_backend):
        # A single failing child still surfaces its own error class, so
        # existing catch semantics don't change.
        with pytest.raises(TetraRuntimeError):
            run("""
                def main():
                    parallel:
                        x = [1][9]
                        print("sibling ok")
            """, backend=any_backend)

    def test_two_failing_background_blocks_both_reported(self):
        with pytest.raises(TetraThreadError) as info:
            run("""
                def main():
                    background:
                        x = [1][7]
                    background:
                        y = [2][8]
                    print("fg")
            """)
        message = str(info.value)
        assert "2 background threads failed" in message
        assert "7" in message and "8" in message

    def test_two_failing_background_blocks_coop(self):
        with pytest.raises(TetraThreadError) as info:
            run("""
                def main():
                    background:
                        x = [1][7]
                    background:
                        y = [2][8]
                    print("fg")
            """, backend="coop")
        assert "2 background threads failed" in str(info.value)

    def test_failure_message_names_threads(self):
        with pytest.raises(TetraThreadError) as info:
            run(self.TWO_FAILING_CHILDREN.replace("# --", ""))
        # Both children appear by label in the aggregate message.
        assert str(info.value).count("failed with") == 2


class TestParallelForEdgeCases:
    def test_cyclic_chunking_more_workers_than_items(self):
        config = RuntimeConfig(num_workers=16, chunking="cyclic")
        assert run("""
            def main():
                total = 0
                parallel for i in [1 ... 3]:
                    lock total:
                        total += i
                print(total)
        """, config=config) == ["6"]

    def test_cyclic_chunking_empty_iterable(self, any_backend):
        config = RuntimeConfig(num_workers=4, chunking="cyclic")
        assert run("""
            def main():
                parallel for i in [5 ... 4]:
                    print("never")
                print("empty ok")
        """, backend=any_backend, config=config) == ["empty ok"]

    def test_cyclic_chunking_empty_array(self, any_backend):
        config = RuntimeConfig(num_workers=4, chunking="cyclic")
        assert run("""
            def main():
                items = [0]
                parallel for x in items:
                    print(x)
                print("one")
        """, backend=any_backend, config=config) == ["0", "one"]

    def test_cyclic_chunking_preserves_element_coverage(self):
        # num_workers > len(items): every item runs exactly once.
        config = RuntimeConfig(num_workers=7, chunking="cyclic")
        assert run("""
            def main():
                out = array(4, 0)
                parallel for i in [0 ... 3]:
                    out[i] = out[i] + 1
                print(out)
        """, config=config) == ["[1, 1, 1, 1]"]
