"""Diagnostics rendering: the compiler-style messages users actually see."""

import textwrap

import pytest

from repro.api import run_source
from repro.errors import (
    TetraDeadlockError,
    TetraError,
    TetraLimitError,
    TetraRuntimeError,
    TetraSyntaxError,
    TetraThreadError,
    TetraTypeError,
    TetraUserError,
    TetraZeroDivisionError,
    is_catchable,
)
from repro.source import NO_SPAN, SourceFile, Span


class TestRenderFormat:
    def test_render_with_source_and_caret(self):
        source = SourceFile.from_string("x = 1 + true\n", "prog.ttr")
        exc = TetraTypeError("bad operands", Span(8, 12, 1, 9))
        exc.attach_source(source)
        rendered = exc.render()
        assert rendered.split("\n")[0] == "prog.ttr:1:9: type error: bad operands"
        assert "x = 1 + true" in rendered
        assert "^" in rendered

    def test_caret_width_matches_span(self):
        source = SourceFile.from_string("print(nope)\n", "f.ttr")
        exc = TetraTypeError("unknown", Span(6, 10, 1, 7))
        exc.attach_source(source)
        caret_line = exc.render().split("\n")[-1]
        assert caret_line.count("^") == 4

    def test_render_without_source(self):
        exc = TetraRuntimeError("boom", Span(0, 1, 3, 2))
        assert exc.render() == "3:2: runtime error: boom"

    def test_render_without_span(self):
        exc = TetraRuntimeError("boom")
        assert exc.render() == "runtime error: boom"

    def test_str_includes_location(self):
        exc = TetraRuntimeError("boom", Span(0, 1, 3, 2))
        assert str(exc) == "boom (at 3:2)"

    def test_attach_source_is_idempotent(self):
        a = SourceFile.from_string("x", "a")
        b = SourceFile.from_string("y", "b")
        exc = TetraError("m", Span(0, 1, 1, 1))
        exc.attach_source(a)
        exc.attach_source(b)  # must not overwrite
        assert exc.source is a

    @pytest.mark.parametrize("cls,phase", [
        (TetraSyntaxError, "syntax error"),
        (TetraTypeError, "type error"),
        (TetraRuntimeError, "runtime error"),
        (TetraZeroDivisionError, "division by zero"),
        (TetraDeadlockError, "deadlock"),
        (TetraUserError, "error"),
        (TetraLimitError, "limit exceeded"),
    ])
    def test_phase_labels(self, cls, phase):
        assert cls("m").render().startswith(f"{phase}: m")


class TestCatchability:
    def test_ordinary_runtime_errors_catchable(self):
        assert is_catchable(TetraRuntimeError("x"))
        assert is_catchable(TetraZeroDivisionError("x"))
        assert is_catchable(TetraUserError("x"))

    def test_infrastructure_errors_not_catchable(self):
        assert not is_catchable(TetraDeadlockError("x"))
        assert not is_catchable(TetraThreadError("x"))
        assert not is_catchable(TetraLimitError("x"))

    def test_static_errors_not_catchable(self):
        assert not is_catchable(TetraTypeError("x"))
        assert not is_catchable(ValueError("x"))


class TestEndToEndMessages:
    """Golden-ish checks on messages a student would actually read."""

    def run_expect(self, source: str, exc_type):
        with pytest.raises(exc_type) as info:
            run_source(textwrap.dedent(source), name="lesson.ttr")
        return info.value.render()

    def test_runtime_error_names_file_and_line(self):
        rendered = self.run_expect("""
            def main():
                xs = [1, 2]
                print(xs[2])
        """, TetraRuntimeError)
        assert "lesson.ttr:4" in rendered
        assert "valid indexes are 0 through 1" in rendered
        assert "print(xs[2])" in rendered

    def test_type_error_explains_inference(self):
        rendered = self.run_expect("""
            def main():
                count = 0
                count = "zero"
        """, TetraTypeError)
        assert "inferred as int" in rendered
        assert "first assigned at" in rendered

    def test_parse_error_suggests_indentation(self):
        rendered = self.run_expect("""
            def main():
            print(1)
        """, TetraSyntaxError)
        assert "indent" in rendered

    def test_deadlock_message_teaches_ordering(self):
        with pytest.raises(TetraDeadlockError) as info:
            run_source(textwrap.dedent("""
                def main():
                    lock a:
                        lock a:
                            pass
            """))
        assert "not re-entrant" in str(info.value)

    def test_hint_for_calling_function_without_parens(self):
        rendered = self.run_expect("""
            def helper():
                pass

            def main():
                x = helper
        """, TetraTypeError)
        assert "parentheses" in rendered
