"""Dynamic race detector tests: true positives, no false positives,
determinism, every surface (API, trace replay, CLI, IDE, debugger)."""

from __future__ import annotations

import textwrap

import pytest

from conftest import run
from repro.analysis import RaceDetector, render_race_panel, replay_trace
from repro.api import run_source
from repro.runtime import RuntimeConfig, SimBackend

CONFIG = RuntimeConfig(num_workers=4, detect_races=True)

RACY_MAX = """
    def main():
        nums = [3, 90, 14, 50, 7, 61]
        largest = 0
        parallel for num in nums:
            if num > largest:
                largest = num
        print(largest)
"""

LOCKED_MAX = """
    def main():
        nums = [3, 90, 14, 50, 7, 61]
        largest = 0
        parallel for num in nums:
            lock guard:
                if num > largest:
                    largest = num
        print(largest)
"""


def races_of(text: str, backend: str = "thread", **kwargs):
    result = run_source(textwrap.dedent(text), backend=backend,
                        config=CONFIG, **kwargs)
    return result.races


class TestTruePositives:
    def test_racy_max_detected_on_every_backend(self, any_backend):
        races = races_of(RACY_MAX, backend=any_backend)
        assert races, f"{any_backend} backend missed the race"
        report = races[0]
        assert report.variable == "largest"

    def test_report_names_both_sites(self):
        races = races_of(RACY_MAX, backend="coop")
        kinds = {races[0].first.is_write, races[0].second.is_write}
        assert True in kinds  # at least one side is a write
        # Both spans point into the parallel-for body (lines 6/7 of the
        # dedented source).
        lines = {races[0].first.span.line, races[0].second.span.line}
        assert lines <= {6, 7}
        assert races[0].first.thread != races[0].second.thread
        headline = races[0].headline()
        assert "data race on 'largest'" in headline
        assert ":6:" in headline or ":7:" in headline

    def test_parallel_block_write_write(self, any_backend):
        races = races_of("""
            def main():
                total = 0
                parallel:
                    total = total + 1
                    total = total + 2
                print(total)
        """, backend=any_backend)
        assert any(r.variable == "total" for r in races)

    def test_background_races_with_main(self, any_backend):
        races = races_of("""
            def main():
                flag = 0
                background:
                    flag = 1
                flag = 2
                print("done")
        """, backend=any_backend)
        assert any(r.variable == "flag" for r in races)

    def test_object_field_race(self, any_backend):
        races = races_of("""
            class Account:
                balance int

            def main():
                acct = Account(100)
                parallel for i in [1 ... 4]:
                    acct.balance = acct.balance + 1
                print(acct.balance)
        """, backend=any_backend)
        assert any("balance" in r.variable for r in races)

    def test_array_element_race(self, any_backend):
        races = races_of("""
            def main():
                data = array(2, 0)
                parallel for i in [1 ... 4]:
                    data[0] = data[0] + i
                print(data[0])
        """, backend=any_backend)
        assert any("[0]" in r.variable for r in races)


class TestNoFalsePositives:
    def test_locked_max_is_quiet(self, any_backend):
        assert races_of(LOCKED_MAX, backend=any_backend) == []

    def test_disjoint_array_elements_are_quiet(self, any_backend):
        races = races_of("""
            def main():
                data = array(4, 0)
                parallel for i in [0 ... 3]:
                    data[i] = i * i
                print(data[3])
        """, backend=any_backend)
        assert races == []

    def test_access_after_join_is_ordered(self, any_backend):
        races = races_of("""
            def main():
                x = 0
                parallel:
                    x = 1
                x = 2
                print(x)
        """, backend=any_backend)
        assert races == []

    def test_private_induction_variable_is_quiet(self, any_backend):
        races = races_of("""
            def main():
                total = 0
                parallel for i in [1 ... 8]:
                    lock guard:
                        total = total + i
                print(total)
        """, backend=any_backend)
        assert races == []

    def test_bank_account_example_is_quiet(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        text = (root / "examples" / "tetra" / "bank_account.ttr").read_text()
        result = run_source(text, config=CONFIG)
        assert result.races == []

    def test_detector_off_by_default(self):
        result = run_source(textwrap.dedent(RACY_MAX))
        assert result.races == []


class TestDeterminism:
    def test_coop_reports_identical_across_runs(self):
        def signature():
            races = races_of(RACY_MAX, backend="coop")
            return tuple(sorted(
                (r.variable, r.first.span.line, r.second.span.line)
                for r in races
            ))

        first = signature()
        assert first
        for _ in range(9):
            assert signature() == first


class TestTraceReplay:
    def test_replay_matches_live_detection(self):
        backend = SimBackend(config=CONFIG)
        result = run_source(textwrap.dedent(RACY_MAX), backend=backend,
                            config=CONFIG)
        assert result.races
        replayed = replay_trace(backend.trace)
        assert {r.variable for r in replayed} == \
            {r.variable for r in result.races}

    def test_replay_survives_json_round_trip(self):
        from repro.runtime.traceio import trace_from_json, trace_to_json

        backend = SimBackend(config=CONFIG)
        run_source(textwrap.dedent(RACY_MAX), backend=backend, config=CONFIG)
        restored = trace_from_json(trace_to_json(backend.trace))
        assert any(r.variable == "largest" for r in replay_trace(restored))

    def test_locked_trace_replays_quiet(self):
        backend = SimBackend(config=CONFIG)
        run_source(textwrap.dedent(LOCKED_MAX), backend=backend,
                   config=CONFIG)
        assert replay_trace(backend.trace) == []


class TestDetectorUnit:
    def test_fork_join_orders_accesses(self):
        det = RaceDetector()
        det.register("main", "main thread")
        det.fork("main", "child", "child 1")
        det.write("child", "x", "x", _span(3))
        det.join("main", "child")
        det.write("main", "x", "x", _span(5))
        assert det.reports == []

    def test_unjoined_fork_races(self):
        det = RaceDetector()
        det.register("main", "main thread")
        det.fork("main", "child", "child 1")
        det.write("child", "x", "x", _span(3))
        det.write("main", "x", "x", _span(5))
        assert len(det.reports) == 1
        assert det.reports[0].variable == "x"

    def test_common_lock_suppresses(self):
        det = RaceDetector()
        det.register("main", "main thread")
        det.fork("main", "child", "child 1")
        det.acquire("child", "guard")
        det.write("child", "x", "x", _span(3))
        det.release("child", "guard")
        det.acquire("main", "guard")
        det.write("main", "x", "x", _span(5))
        det.release("main", "guard")
        assert det.reports == []

    def test_duplicate_site_pairs_reported_once(self):
        det = RaceDetector()
        det.register("main", "main thread")
        det.fork("main", "a", "worker a")
        det.fork("main", "b", "worker b")
        for _ in range(5):
            det.write("a", "x", "x", _span(3))
            det.write("b", "x", "x", _span(3))
        assert len(det.reports) == 1

    def test_read_read_is_not_a_race(self):
        det = RaceDetector()
        det.register("main", "main thread")
        det.fork("main", "a", "worker a")
        det.read("a", "x", "x", _span(3))
        det.read("main", "x", "x", _span(5))
        assert det.reports == []


class TestPanel:
    def test_empty_panel(self):
        assert "no data races" in render_race_panel([])

    def test_panel_counts_and_advises(self):
        races = races_of(RACY_MAX, backend="coop")
        panel = render_race_panel(races)
        assert "race detector:" in panel
        assert "data race" in panel
        assert "lock" in panel


class TestSurfaces:
    def test_ide_session_race_panel(self):
        from repro.ide.session import IDESession

        session = IDESession(textwrap.dedent(RACY_MAX))
        session.run(backend="coop", detect_races=True)
        assert session.races
        panel = session.race_panel()
        assert "data race on 'largest'" in panel
        assert ":6:" in panel or ":7:" in panel

    def test_ide_session_quiet_without_flag(self):
        from repro.ide.session import IDESession

        session = IDESession(textwrap.dedent(RACY_MAX))
        session.run(backend="coop")
        assert session.races == []
        assert "no data races" in session.race_panel()

    def test_debugger_collects_races(self):
        from repro.ide.debugger import DebugSession

        dbg = DebugSession(textwrap.dedent(RACY_MAX), detect_races=True)
        dbg.start()
        dbg.continue_all()
        assert any(r.variable == "largest" for r in dbg.races)

    def test_run_output_still_correct_with_detector(self, any_backend):
        lines = run(LOCKED_MAX, backend=any_backend, config=CONFIG)
        assert lines == ["90"]


def _span(line: int):
    from repro.source import Span

    return Span(0, 0, line, 1)


class TestWorkerDefaults:
    def test_detection_works_without_explicit_workers(self, any_backend):
        # Even on a 1-core host the default worker count must expose the
        # parallel-for's logical concurrency to the detector.
        result = run_source(textwrap.dedent(RACY_MAX), backend=any_backend,
                            detect_races=True)
        assert result.races, \
            f"{any_backend} found no race with default workers"

    def test_explicit_single_worker_is_genuinely_race_free(self):
        # --workers 1 really does serialize the loop in one thread; the
        # detector staying quiet is correct, not a false negative.
        config = RuntimeConfig(num_workers=1, detect_races=True)
        result = run_source(textwrap.dedent(RACY_MAX), config=config)
        assert result.races == []
        assert result.output_lines() == ["90"]
