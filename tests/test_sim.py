"""SimBackend end-to-end: recording Tetra programs and timing them on the
model machine — the substrate of the paper's speedup evaluation."""

import textwrap

import pytest

from repro.api import run_source
from repro.errors import TetraDeadlockError
from repro.runtime import RuntimeConfig
from repro.runtime.cost import FREE_PARALLELISM, CostModel
from repro.runtime.sim import SimBackend
from repro.programs import PRIME_COUNTS, primes_program


def record(text, cores=8, cost_model=None, num_workers=None, inputs=None):
    backend = SimBackend(
        cores=cores,
        cost_model=cost_model or CostModel(),
        config=RuntimeConfig(num_workers=num_workers),
    )
    result = run_source(textwrap.dedent(text), inputs=inputs, backend=backend)
    return backend, result


SEQUENTIAL = """
def main():
    total = 0
    i = 1
    while i <= 50:
        total += i
        i += 1
    print(total)
"""

PARALLEL_SUM = """
def main():
    total = 0
    parallel for i in [1 ... 200]:
        lock total:
            total += i
    print(total)
"""


class TestRecording:
    def test_sequential_program_is_one_task(self):
        backend, result = record(SEQUENTIAL)
        assert result.output_lines() == ["1275"]
        assert backend.trace.task_count() == 1
        assert backend.trace.total_work > 0

    def test_parallel_for_spawns_worker_tasks(self):
        backend, _ = record(PARALLEL_SUM, cores=8)
        assert backend.trace.task_count() == 9  # main + 8 workers

    def test_worker_count_follows_config(self):
        backend, _ = record(PARALLEL_SUM, num_workers=4)
        assert backend.trace.task_count() == 5

    def test_output_identical_to_thread_backend(self):
        _, sim_result = record(PARALLEL_SUM)
        thread_result = run_source(textwrap.dedent(PARALLEL_SUM))
        assert sim_result.output_lines() == thread_result.output_lines()

    def test_parallel_block_children_recorded(self):
        backend, _ = record("""
            def main():
                parallel:
                    a = 1
                    b = 2
                    c = 3
        """)
        assert backend.trace.task_count() == 4

    def test_locks_recorded_as_intervals(self):
        from repro.runtime.taskgraph import Acquire, Release

        backend, _ = record("""
            def main():
                parallel for i in [1 ... 4]:
                    lock guard:
                        x = i
        """, num_workers=2)
        kinds = [
            type(item).__name__
            for task in backend.trace.walk()
            for item in task.items
        ]
        assert "Acquire" in kinds and "Release" in kinds

    def test_deterministic_trace_work(self):
        works = []
        for _ in range(2):
            backend, _ = record(PARALLEL_SUM, cores=4)
            works.append(backend.trace.subtree_work())
        assert works[0] == works[1]

    def test_self_reentrant_lock_diagnosed_during_recording(self):
        with pytest.raises(TetraDeadlockError, match="re-entered"):
            record("""
                def main():
                    lock a:
                        lock a:
                            x = 1
            """)


class TestScheduling:
    def test_schedule_default_cores(self):
        backend, _ = record(PARALLEL_SUM, cores=4)
        result = backend.schedule()
        assert result.cores == 4
        assert result.makespan > 0

    def test_more_cores_never_slower(self):
        backend, _ = record(PARALLEL_SUM, cores=8)
        spans = [backend.schedule(m).makespan for m in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)

    def test_speedups_reports_baseline(self):
        backend, _ = record(PARALLEL_SUM, cores=8)
        curve = backend.speedups([2, 4, 8])
        assert set(curve) == {1, 2, 4, 8}
        assert curve[8].speedup_against(curve[1]) > 1.5

    def test_sequential_program_gains_nothing(self):
        backend, _ = record(SEQUENTIAL)
        curve = backend.speedups([8])
        assert curve[8].speedup_against(curve[1]) == pytest.approx(1.0)

    def test_free_parallelism_beats_default_costs(self):
        # Lock-free compute: without overheads speedup approaches the core
        # count; with spawn/join/sharing costs it falls measurably short.
        lockfree = """
            def main():
                squares = array(64, 0)
                parallel for i in [0 ... 63]:
                    squares[i] = i * i
        """
        free_backend, _ = record(lockfree, cores=8,
                                 cost_model=FREE_PARALLELISM)
        costly_backend, _ = record(lockfree, cores=8)
        free = free_backend.speedups([8])
        costly = costly_backend.speedups([8])
        free_s = free[8].speedup_against(free[1])
        costly_s = costly[8].speedup_against(costly[1])
        assert free_s > costly_s
        assert free_s > 4.0

    def test_lock_bound_program_does_not_scale(self):
        # Everything happens inside one lock: speedup ~1 regardless of cores.
        backend, _ = record("""
            def busy(n int) int:
                t = 0
                i = 0
                while i < n:
                    t += i
                    i += 1
                return t

            def main():
                total = 0
                parallel for i in [1 ... 8]:
                    lock all:
                        total += busy(200)
                print(total)
        """, cores=8, cost_model=FREE_PARALLELISM)
        curve = backend.speedups([8])
        assert curve[8].speedup_against(curve[1]) < 1.4


class TestPaperEvaluation:
    """The §IV result at test scale: parallel primes approach ~5× on 8
    cores with efficiency in the paper's neighbourhood."""

    def test_primes_output_correct(self):
        backend, result = record(primes_program(1000), cores=8)
        assert result.output_lines() == [str(PRIME_COUNTS[1000])]

    def test_primes_speedup_shape(self):
        backend, _ = record(primes_program(1000), cores=8)
        curve = backend.speedups([2, 4, 8])
        base = curve[1]
        s2 = curve[2].speedup_against(base)
        s4 = curve[4].speedup_against(base)
        s8 = curve[8].speedup_against(base)
        assert 1.5 < s2 <= 2.0
        assert 2.5 < s4 <= 4.0
        assert 3.5 < s8 < 7.0  # paper: ≈5× — sublinear but real scaling
        assert s2 < s4 < s8

    def test_primes_efficiency_drops_with_cores(self):
        backend, _ = record(primes_program(1000), cores=8)
        curve = backend.speedups([2, 4, 8])
        base = curve[1]
        e2 = curve[2].efficiency_against(base)
        e8 = curve[8].efficiency_against(base)
        assert e8 < e2 <= 1.0
        assert 0.4 < e8 < 0.9  # paper reports 62.5%
