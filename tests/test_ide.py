"""IDE substrate tests: highlighting, sessions, and the TUI debugger."""

import io
import textwrap

import pytest

from repro.ide.highlight import Style, highlight, render_ansi
from repro.ide.session import IDESession
from repro.ide.tui import DebuggerTUI
from repro.programs import FIGURE_1_FACTORIAL, FIGURE_3_PARALLEL_MAX


def styles_of(text, style):
    return [s.text for s in highlight(text) if s.style is style]


class TestHighlight:
    def test_keywords(self):
        spans = styles_of("def f():\n    return 1\n", Style.KEYWORD)
        assert "def" in spans and "return" in spans

    def test_parallel_keywords_special_style(self):
        text = FIGURE_3_PARALLEL_MAX
        special = styles_of(text, Style.PARALLEL_KEYWORD)
        assert "parallel" in special
        assert "lock" in special

    def test_type_keywords(self):
        spans = styles_of("def f(x int) real:\n    return 1.0\n", Style.TYPE)
        assert spans == ["int", "real"]

    def test_numbers_and_strings(self):
        text = 'def main():\n    print("hi", 42, 1.5)\n'
        assert '"hi"' in styles_of(text, Style.STRING)
        numbers = styles_of(text, Style.NUMBER)
        assert "42" in numbers and "1.5" in numbers

    def test_comments_recovered(self):
        text = "# leading comment\ndef main():\n    x = 1  # trailing\n"
        comments = styles_of(text, Style.COMMENT)
        assert "# leading comment" in comments
        assert "# trailing" in comments

    def test_hash_in_string_not_comment(self):
        text = 'def main():\n    s = "a # b"\n'
        assert styles_of(text, Style.COMMENT) == []
        assert '"a # b"' in styles_of(text, Style.STRING)

    def test_function_names_styled(self):
        text = "def main():\n    helper(1)\n"
        assert "helper" in styles_of(text, Style.FUNCTION)

    def test_spans_sorted_non_overlapping(self):
        spans = highlight(FIGURE_1_FACTORIAL)
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start

    def test_broken_source_still_highlights_comments(self):
        text = "# fine\ndef broken(((\n"
        assert "# fine" in styles_of(text, Style.COMMENT)

    def test_render_ansi_roundtrip_text(self):
        text = FIGURE_1_FACTORIAL
        rendered = render_ansi(text)
        # Stripping escape codes must give back the original text.
        import re

        stripped = re.sub(r"\x1b\[[0-9;]*m", "", rendered)
        assert stripped == text

    def test_render_contains_color_codes(self):
        assert "\x1b[" in render_ansi("def main():\n    pass\n")


class TestIDESession:
    def test_run_captures_console(self):
        session = IDESession('def main():\n    print("out")\n')
        output = session.run()
        assert output == "out\n"
        assert session.console.output == "out\n"

    def test_run_with_inputs(self):
        session = IDESession(FIGURE_1_FACTORIAL)
        output = session.run(inputs=["5"])
        assert "120" in output

    def test_runtime_error_rendered_to_console(self):
        session = IDESession("def main():\n    print([1][9])\n")
        output = session.run()
        assert "index error" in output
        assert "out of range" in output

    def test_compile_error_rendered_to_console(self):
        session = IDESession("def main():\n    x = nope\n")
        output = session.run()
        assert "name error" in output

    def test_diagnostics_list(self):
        session = IDESession("def main():\n    a = one\n    b = two\n")
        diags = session.diagnostics()
        assert len(diags) == 2
        assert diags[0].line == 2
        assert diags[1].line == 3

    def test_clean_program_no_diagnostics(self):
        assert IDESession(FIGURE_1_FACTORIAL).diagnostics() == []

    def test_save_and_open(self, tmp_path):
        path = str(tmp_path / "prog.ttr")
        session = IDESession("def main():\n    pass\n")
        session.save(path)
        again = IDESession.open(path)
        assert again.text == session.text
        assert again.path == path

    def test_save_without_path_rejected(self):
        with pytest.raises(ValueError):
            IDESession("x").save()

    def test_set_text(self):
        session = IDESession("old")
        session.set_text("new")
        assert session.text == "new"

    def test_debug_returns_started_session(self):
        session = IDESession("def main():\n    x = 1\n")
        dbg = session.debug()
        assert not dbg.finished
        dbg.continue_all()
        assert dbg.finished


class TestDebuggerTUI:
    def drive(self, program, commands):
        stdin = io.StringIO("\n".join(commands) + "\n")
        stdout = io.StringIO()
        tui = DebuggerTUI(textwrap.dedent(program), stdin=stdin, stdout=stdout)
        tui.repl()
        return stdout.getvalue()

    SIMPLE = """
    def main():
        x = 1
        y = 2
        print(x + y)
    """

    def test_threads_and_quit(self):
        out = self.drive(self.SIMPLE, ["threads", "quit"])
        assert "main thread" in out
        assert "paused" in out

    def test_step_and_vars(self):
        out = self.drive(self.SIMPLE, ["step 1", "vars 1", "quit"])
        assert "x = 1" in out

    def test_view_shows_arrow(self):
        out = self.drive(self.SIMPLE, ["view 1", "quit"])
        assert "->" in out
        assert "x = 1" in out

    def test_print_expression(self):
        out = self.drive(self.SIMPLE, ["step 1", "step 1", "print 1 x + y",
                                       "quit"])
        assert "x + y = 3" in out

    def test_continue_runs_to_end(self):
        out = self.drive(self.SIMPLE, ["continue"])
        assert "program finished" in out
        assert "| 3" in out

    def test_breakpoint_flow(self):
        out = self.drive(self.SIMPLE, ["break 5", "continue", "threads",
                                       "delete 5", "continue"])
        assert "breakpoint at line 5" in out
        assert "stopped at a breakpoint" in out
        assert "program finished" in out

    def test_bt_command(self):
        program = """
        def work() int:
            return 1

        def main():
            print(work())
        """
        out = self.drive(program, ["step 1", "bt 1", "quit"])
        assert "#0 work" in out or "#0 main" in out

    def test_unknown_command(self):
        out = self.drive(self.SIMPLE, ["frobnicate", "quit"])
        assert "unknown command" in out

    def test_help(self):
        out = self.drive(self.SIMPLE, ["help", "quit"])
        assert "step <t>" in out

    def test_locks_command(self):
        program = """
        def main():
            lock gate:
                x = 1
        """
        out = self.drive(program, ["step 1", "locks", "quit"])
        assert "lock 'gate' held by" in out

    def test_output_command_empty(self):
        out = self.drive(self.SIMPLE, ["output", "quit"])
        assert "(no output yet)" in out

    def test_run_thread_command(self):
        out = self.drive(self.SIMPLE, ["run 1"])
        assert "program finished" in out
