"""Public API tests (repro.api): the functions embedders call."""

import pytest

from repro import (
    RuntimeConfig,
    SimBackend,
    TetraSyntaxError,
    TetraTypeError,
    check_source,
    compile_source,
    run_file,
    run_source,
)
from repro.api import BACKEND_FACTORIES


HELLO = 'def main():\n    print("hello")\n'


class TestRunSource:
    def test_returns_output(self):
        result = run_source(HELLO)
        assert result.output == "hello\n"
        assert result.output_lines() == ["hello"]

    def test_inputs(self):
        result = run_source(
            "def main():\n    print(read_int() * 2)\n", inputs=["21"]
        )
        assert result.output == "42\n"

    def test_backend_by_name(self):
        for name in BACKEND_FACTORIES:
            assert run_source(HELLO, backend=name).output == "hello\n"

    def test_backend_instance(self):
        backend = SimBackend(cores=2)
        result = run_source(HELLO, backend=backend)
        assert result.backend is backend
        assert backend.trace.total_work > 0

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_source(HELLO, backend="quantum")

    def test_config_respected(self):
        config = RuntimeConfig(num_workers=2)
        result = run_source(
            "def main():\n"
            "    t = 0\n"
            "    parallel for i in [1 ... 6]:\n"
            "        lock t:\n"
            "            t += 1\n"
            "    print(t)\n",
            config=config,
        )
        assert result.output == "6\n"

    def test_syntax_error_raised(self):
        with pytest.raises(TetraSyntaxError):
            run_source("def main(:\n")

    def test_type_error_raised(self):
        with pytest.raises(TetraTypeError):
            run_source("def main():\n    x = 1 + true\n")

    def test_custom_entry_point(self):
        result = run_source(
            "def alt():\n    print(7)\n\ndef main():\n    print(1)\n",
            entry="alt",
        )
        assert result.output == "7\n"

    def test_symbols_exposed(self):
        result = run_source("def main():\n    x = 1\n")
        assert "main" in result.symbols.functions


class TestCompileAndCheck:
    def test_compile_source_returns_checked_program(self):
        program, source = compile_source(HELLO)
        assert program.function("main") is not None
        assert hasattr(program, "symbols")

    def test_check_source_clean(self):
        assert check_source(HELLO) == []

    def test_check_source_collects_type_errors(self):
        errors = check_source("def main():\n    a = x\n    b = y\n")
        assert len(errors) == 2

    def test_check_source_syntax_error(self):
        errors = check_source("def main(:\n")
        assert len(errors) == 1
        assert isinstance(errors[0], TetraSyntaxError)


class TestRunFile:
    def test_run_file(self, tmp_path):
        path = tmp_path / "hello.ttr"
        path.write_text(HELLO)
        assert run_file(str(path)).output == "hello\n"

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.ttr"
        path.write_text("def main():\n    x = nope\n")
        with pytest.raises(TetraTypeError) as info:
            run_file(str(path))
        assert "bad.ttr" in info.value.render()

    def test_entry_passthrough(self, tmp_path):
        # run_file used to silently drop entry= (and replay=) while
        # run_source honored them — the two front doors must match.
        path = tmp_path / "alt.ttr"
        path.write_text("def alt():\n    print(7)\n\n"
                        "def main():\n    print(1)\n")
        assert run_file(str(path), entry="alt").output == "7\n"
        assert run_file(str(path)).output == "1\n"

    def test_replay_passthrough(self, tmp_path):
        source = (
            "def main():\n"
            "    t = 0\n"
            "    parallel for i in [1 ... 4]:\n"
            "        lock t:\n"
            "            t += 1\n"
            "    print(t)\n"
        )
        path = tmp_path / "recorded.ttr"
        path.write_text(source)
        recorded = run_file(str(path), backend="coop",
                            record_schedule=True)
        assert recorded.schedule is not None
        replayed = run_file(str(path), replay=recorded.schedule)
        assert replayed.output == recorded.output
        assert replayed.replay is not None

    def test_output_limit_passthrough(self, tmp_path):
        from repro import TetraLimitError

        path = tmp_path / "noisy.ttr"
        path.write_text('def main():\n    while true:\n'
                        '        print("aaaaaaaaaa")\n')
        with pytest.raises(TetraLimitError):
            run_file(str(path), output_limit=500)
        result = run_file(str(path), output_limit=500, on_error="return")
        assert result.aborted_by == "output"


class TestProgramCacheSingleFlight:
    def test_concurrent_misses_compile_once(self):
        import threading

        from repro.api import clear_program_cache, program_cache_info

        clear_program_cache()
        src = 'def main():\n    print("single-flight")\n'
        barrier = threading.Barrier(8)
        results = []
        errors = []

        def worker():
            barrier.wait()
            try:
                results.append(compile_via_cache(src))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        def compile_via_cache(text):
            from repro.api import cached_program

            return cached_program(text, "<single-flight>")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8
        # All callers got the same cached tree...
        first = results[0]
        assert all(r[0] is first[0] for r in results)
        # ...and the stampede cost exactly one compile: one miss, the
        # other seven waited and hit.
        info = program_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 7

    def test_failed_leader_wakes_waiters_with_diagnostics(self):
        import threading

        from repro.api import cached_program, clear_program_cache

        clear_program_cache()
        bad = "def main(:\n"
        barrier = threading.Barrier(6)
        raised = []

        def worker():
            barrier.wait()
            try:
                cached_program(bad, "<broken>")
            except TetraSyntaxError as exc:
                raised.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Nobody hangs on the dead leader's event; everyone gets its own
        # diagnostic (failures are never cached).
        assert len(raised) == 6

    def test_inflight_table_drains(self):
        from repro.api import _inflight, cached_program

        cached_program('def main():\n    print("drain")\n', "<drain>")
        assert _inflight == {}
