"""Public API tests (repro.api): the functions embedders call."""

import pytest

from repro import (
    RuntimeConfig,
    SimBackend,
    TetraSyntaxError,
    TetraTypeError,
    check_source,
    compile_source,
    run_file,
    run_source,
)
from repro.api import BACKEND_FACTORIES


HELLO = 'def main():\n    print("hello")\n'


class TestRunSource:
    def test_returns_output(self):
        result = run_source(HELLO)
        assert result.output == "hello\n"
        assert result.output_lines() == ["hello"]

    def test_inputs(self):
        result = run_source(
            "def main():\n    print(read_int() * 2)\n", inputs=["21"]
        )
        assert result.output == "42\n"

    def test_backend_by_name(self):
        for name in BACKEND_FACTORIES:
            assert run_source(HELLO, backend=name).output == "hello\n"

    def test_backend_instance(self):
        backend = SimBackend(cores=2)
        result = run_source(HELLO, backend=backend)
        assert result.backend is backend
        assert backend.trace.total_work > 0

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_source(HELLO, backend="quantum")

    def test_config_respected(self):
        config = RuntimeConfig(num_workers=2)
        result = run_source(
            "def main():\n"
            "    t = 0\n"
            "    parallel for i in [1 ... 6]:\n"
            "        lock t:\n"
            "            t += 1\n"
            "    print(t)\n",
            config=config,
        )
        assert result.output == "6\n"

    def test_syntax_error_raised(self):
        with pytest.raises(TetraSyntaxError):
            run_source("def main(:\n")

    def test_type_error_raised(self):
        with pytest.raises(TetraTypeError):
            run_source("def main():\n    x = 1 + true\n")

    def test_custom_entry_point(self):
        result = run_source(
            "def alt():\n    print(7)\n\ndef main():\n    print(1)\n",
            entry="alt",
        )
        assert result.output == "7\n"

    def test_symbols_exposed(self):
        result = run_source("def main():\n    x = 1\n")
        assert "main" in result.symbols.functions


class TestCompileAndCheck:
    def test_compile_source_returns_checked_program(self):
        program, source = compile_source(HELLO)
        assert program.function("main") is not None
        assert hasattr(program, "symbols")

    def test_check_source_clean(self):
        assert check_source(HELLO) == []

    def test_check_source_collects_type_errors(self):
        errors = check_source("def main():\n    a = x\n    b = y\n")
        assert len(errors) == 2

    def test_check_source_syntax_error(self):
        errors = check_source("def main(:\n")
        assert len(errors) == 1
        assert isinstance(errors[0], TetraSyntaxError)


class TestRunFile:
    def test_run_file(self, tmp_path):
        path = tmp_path / "hello.ttr"
        path.write_text(HELLO)
        assert run_file(str(path)).output == "hello\n"

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.ttr"
        path.write_text("def main():\n    x = nope\n")
        with pytest.raises(TetraTypeError) as info:
            run_file(str(path))
        assert "bad.ttr" in info.value.render()
