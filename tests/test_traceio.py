"""Trace serialization: JSON round trips, validation, and the CLI flags."""

import pytest

from hypothesis import given, settings

from repro.api import run_source
from repro.errors import TetraError
from repro.runtime.cost import FREE_PARALLELISM
from repro.runtime.machine import Machine
from repro.runtime.sim import SimBackend
from repro.runtime.taskgraph import Acquire, Fork, Release, Task, Work
from repro.runtime.traceio import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)
from repro.programs import primes_program
from repro.tools.cli import main
from test_properties import task_trees, _renumber


def tasks_equal(a: Task, b: Task) -> bool:
    if (a.id, a.label, len(a.items)) != (b.id, b.label, len(b.items)):
        return False
    for x, y in zip(a.items, b.items):
        if type(x) is not type(y):
            return False
        if isinstance(x, Work) and x.units != y.units:
            return False
        if isinstance(x, (Acquire, Release)) and x.name != y.name:
            return False
        if isinstance(x, Fork):
            if x.join != y.join or len(x.children) != len(y.children):
                return False
            if not all(tasks_equal(c, d)
                       for c, d in zip(x.children, y.children)):
                return False
    return True


class TestRoundTrip:
    def build(self):
        root = Task(0, "main", [Work(10)])
        child = Task(1, "worker", [Acquire("m"), Work(5), Release("m")])
        root.items.append(Fork([child], join=True))
        root.items.append(Work(3))
        return root

    def test_hand_built_trace(self):
        root = self.build()
        again = trace_from_json(trace_to_json(root))
        assert tasks_equal(root, again)

    def test_recorded_program_trace(self):
        backend = SimBackend(cores=4)
        run_source(primes_program(200), backend=backend)
        again = trace_from_json(trace_to_json(backend.trace))
        assert tasks_equal(backend.trace, again)

    def test_schedules_identically_after_round_trip(self):
        backend = SimBackend(cores=8)
        run_source(primes_program(300), backend=backend)
        original = Machine(8).run(backend.trace).makespan
        reloaded = Machine(8).run(
            trace_from_json(trace_to_json(backend.trace))
        ).makespan
        assert original == reloaded

    def test_save_and_load_files(self, tmp_path):
        path = str(tmp_path / "trace.json")
        root = self.build()
        save_trace(root, path)
        assert tasks_equal(load_trace(path), root)

    @given(task_trees().map(_renumber))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, root):
        again = trace_from_json(trace_to_json(root))
        assert tasks_equal(root, again)
        a = Machine(4, FREE_PARALLELISM).run(root).makespan
        b = Machine(4, FREE_PARALLELISM).run(again).makespan
        assert a == b


class TestValidation:
    def test_not_json(self):
        with pytest.raises(TetraError, match="not valid JSON"):
            trace_from_json("{nope")

    def test_wrong_format_marker(self):
        with pytest.raises(TetraError, match="not a Tetra trace"):
            trace_from_json('{"format": "something-else", "root": {}}')

    def test_malformed_task(self):
        with pytest.raises(TetraError, match="malformed"):
            trace_from_json(
                '{"format": "tetra-trace/1", "root": {"id": 0}}'
            )

    def test_unknown_item(self):
        with pytest.raises(TetraError, match="unrecognized trace item"):
            trace_from_json(
                '{"format": "tetra-trace/1", "root": '
                '{"id": 0, "label": "x", "items": [{"sleep": 5}]}}'
            )

    def test_duplicate_ids(self):
        text = trace_to_json(Task(0, "a", [Work(1)]))
        dup = text.replace('"id": 0', '"id": 7')  # harmless single task
        trace_from_json(dup)  # still fine
        root = Task(0, "a")
        root.items.append(Fork([Task(0, "b", [Work(1)])], join=True))
        with pytest.raises(TetraError, match="duplicate task ids"):
            trace_from_json(trace_to_json(root))


class TestCliIntegration:
    def test_save_then_load(self, tmp_path, capsys):
        program = tmp_path / "p.ttr"
        program.write_text(primes_program(200))
        trace = str(tmp_path / "trace.json")
        assert main(["sim", str(program), "--cores", "1,4",
                     "--save-trace", trace]) == 0
        first = capsys.readouterr().out
        assert main(["sim", str(program), "--cores", "1,4",
                     "--load-trace", trace]) == 0
        second = capsys.readouterr().out
        # Loading skips interpretation, so the program output line is gone
        # but the speedup table is identical.
        assert first.split("\n")[1:] == second.split("\n")
