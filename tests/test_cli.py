"""CLI tests: every ``tetra`` subcommand end to end."""

import pytest

from repro.tools.cli import main
from repro.programs import (
    FIGURE_1_FACTORIAL,
    FIGURE_2_PARALLEL_SUM,
    FIGURE_3_PARALLEL_MAX,
)


def example(name: str) -> str:
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    return str(root / "examples" / "tetra" / name)


@pytest.fixture
def prog(tmp_path):
    def write(text, name="prog.ttr"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestRun:
    def test_run_program(self, prog, capsys):
        assert main(["run", prog(FIGURE_2_PARALLEL_SUM)]) == 0
        assert capsys.readouterr().out == "5050\n"

    def test_run_backend_choice(self, prog, capsys):
        for backend in ("thread", "sequential", "coop", "sim"):
            assert main(["run", prog(FIGURE_3_PARALLEL_MAX),
                         "--backend", backend]) == 0
            assert capsys.readouterr().out == "96\n"

    def test_run_with_workers_and_chunking(self, prog, capsys):
        path = prog(
            "def main():\n"
            "    t = 0\n"
            "    parallel for i in [1 ... 10]:\n"
            "        lock t:\n"
            "            t += i\n"
            "    print(t)\n"
        )
        assert main(["run", path, "--workers", "3",
                     "--chunking", "cyclic"]) == 0
        assert capsys.readouterr().out == "55\n"

    def test_run_reports_type_error(self, prog, capsys):
        assert main(["run", prog("def main():\n    x = missing\n")]) == 1
        err = capsys.readouterr().err
        assert "name error" in err
        assert "missing" in err

    def test_run_reports_runtime_error_with_caret(self, prog, capsys):
        assert main(["run", prog("def main():\n    print([1][7])\n")]) == 1
        err = capsys.readouterr().err
        assert "index error" in err
        assert "^" in err

    def test_detect_races_reports_race(self, capsys):
        code = main(["run", example("race_demo.ttr"),
                     "--detect-races", "--workers", "4"])
        captured = capsys.readouterr()
        assert code == 3
        assert "data race on 'largest'" in captured.err
        assert "race_demo.ttr:" in captured.err  # file:line anchors
        assert "write by" in captured.err and "read by" in captured.err

    def test_detect_races_quiet_on_locked_program(self, capsys):
        code = main(["run", example("bank_account.ttr"),
                     "--detect-races", "--workers", "4"])
        captured = capsys.readouterr()
        assert code == 0
        assert "no data races" in captured.err

    def test_detect_races_deterministic_on_coop(self, capsys):
        reports = set()
        for _ in range(10):
            main(["run", example("race_demo.ttr"), "--detect-races",
                  "--backend", "coop", "--workers", "4"])
            err = capsys.readouterr().err
            reports.add("\n".join(
                line for line in err.splitlines() if "data race" in line
            ))
        assert len(reports) == 1

    def test_no_flag_no_panel(self, prog, capsys):
        assert main(["run", prog(FIGURE_2_PARALLEL_SUM)]) == 0
        assert "race detector" not in capsys.readouterr().err

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "/nonexistent/prog.ttr"])


class TestCheck:
    def test_clean_program(self, prog, capsys):
        assert main(["check", prog(FIGURE_1_FACTORIAL)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_reports_all_errors(self, prog, capsys):
        path = prog("def main():\n    a = one\n    b = two\n")
        assert main(["check", path]) == 1
        err = capsys.readouterr().err
        assert "2 errors" in err

    def test_syntax_error(self, prog, capsys):
        assert main(["check", prog("def broken(:\n")]) == 1
        assert "syntax error" in capsys.readouterr().err


class TestToolCommands:
    def test_tokens(self, prog, capsys):
        assert main(["tokens", prog("def main():\n    x = 42\n")]) == 0
        out = capsys.readouterr().out
        assert "KW_DEF" in out
        assert "INT 42" in out

    def test_tokens_lex_error(self, prog, capsys):
        assert main(["tokens", prog("def main():\n    x = @\n")]) == 1

    def test_ast(self, prog, capsys):
        assert main(["ast", prog(FIGURE_1_FACTORIAL)]) == 0
        out = capsys.readouterr().out
        assert "FunctionDef" in out
        assert "name='fact'" in out

    def test_ast_with_spans(self, prog, capsys):
        assert main(["ast", prog("def f():\n    pass\n"), "--spans"]) == 0
        assert "@1:" in capsys.readouterr().out

    def test_ast_parse_error(self, prog, capsys):
        assert main(["ast", prog("def broken(:\n")]) == 1

    def test_compile_to_stdout(self, prog, capsys):
        assert main(["compile", prog(FIGURE_2_PARALLEL_SUM)]) == 0
        out = capsys.readouterr().out
        assert "def t_sumr" in out
        assert "run_group" in out

    def test_compile_to_file_runs(self, prog, tmp_path, capsys):
        out_path = str(tmp_path / "compiled.py")
        assert main(["compile", prog(FIGURE_2_PARALLEL_SUM),
                     "-o", out_path]) == 0
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, out_path], capture_output=True, text=True,
            timeout=60,
        )
        assert result.stdout == "5050\n"

    def test_highlight(self, prog, capsys):
        assert main(["highlight", prog(FIGURE_3_PARALLEL_MAX)]) == 0
        out = capsys.readouterr().out
        assert "\x1b[" in out
        assert "parallel" in out

    def test_builtins_listing(self, capsys):
        assert main(["builtins"]) == 0
        out = capsys.readouterr().out
        assert "[math]" in out
        assert "sqrt" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert "tetra" in capsys.readouterr().out
