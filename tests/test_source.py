"""Unit tests for repro.source: files, positions, spans, caret rendering."""

import pytest

from repro.source import NO_SPAN, Position, SourceFile, Span


class TestSourceFile:
    def test_from_string_default_name(self):
        src = SourceFile.from_string("x")
        assert src.name == "<string>"
        assert src.text == "x"

    def test_from_path(self, tmp_path):
        path = tmp_path / "prog.ttr"
        path.write_text("def main():\n    pass\n")
        src = SourceFile.from_path(str(path))
        assert src.name == str(path)
        assert "def main" in src.text

    def test_line_count(self):
        assert SourceFile.from_string("a\nb\nc").line_count == 3

    def test_line_count_trailing_newline(self):
        # A trailing newline opens a final (empty) line.
        assert SourceFile.from_string("a\nb\n").line_count == 3

    def test_line_text(self):
        src = SourceFile.from_string("first\nsecond\nthird")
        assert src.line_text(1) == "first"
        assert src.line_text(2) == "second"
        assert src.line_text(3) == "third"

    def test_line_text_out_of_range(self):
        src = SourceFile.from_string("only")
        assert src.line_text(0) == ""
        assert src.line_text(99) == ""

    def test_position_of_start(self):
        src = SourceFile.from_string("abc\ndef")
        assert src.position_of(0) == Position(1, 1)

    def test_position_of_second_line(self):
        src = SourceFile.from_string("abc\ndef")
        assert src.position_of(4) == Position(2, 1)
        assert src.position_of(6) == Position(2, 3)

    def test_caret_snippet_points_at_column(self):
        src = SourceFile.from_string("x = 1 +\n")
        span = Span(6, 7, 1, 7)
        snippet = src.caret_snippet(span)
        line, caret = snippet.split("\n")
        assert line == "1 | x = 1 +"
        # "| " plus span.column-1 spaces puts the caret under column 7.
        assert caret.index("^") == caret.index("|") + 2 + 6


class TestSpan:
    def test_merge_orders_by_start(self):
        a = Span(5, 8, 1, 6)
        b = Span(0, 3, 1, 1)
        merged = a.merge(b)
        assert merged.start == 0
        assert merged.end == 8
        assert merged.line == 1
        assert merged.column == 1

    def test_merge_is_commutative_on_extent(self):
        a = Span(2, 4, 1, 3)
        b = Span(6, 9, 2, 1)
        assert a.merge(b).start == b.merge(a).start
        assert a.merge(b).end == b.merge(a).end

    def test_point_span_is_empty(self):
        p = Span.point(7, 2, 3)
        assert p.start == p.end == 7

    def test_str_shows_line_column(self):
        assert str(Span(0, 1, 12, 7)) == "12:7"

    def test_no_span_is_falsy_location(self):
        assert NO_SPAN.line == 0
