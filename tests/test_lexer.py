"""Unit tests for the hand-written, indentation-aware scanner."""

import pytest

from repro.errors import TetraIndentationError, TetraSyntaxError
from repro.lexer import TokenType, tokenize
from repro.lexer.indentation import IndentTracker, indent_width
from repro.source import Span

TT = TokenType


def types(text):
    return [t.type for t in tokenize(text)]


def non_layout(text):
    layout = {TT.NEWLINE, TT.INDENT, TT.DEDENT, TT.EOF}
    return [t for t in tokenize(text) if t.type not in layout]


class TestBasicTokens:
    def test_empty_input(self):
        assert types("") == [TT.EOF]

    def test_single_identifier(self):
        toks = tokenize("hello\n")
        assert toks[0].type is TT.IDENT
        assert toks[0].value == "hello"

    def test_identifier_with_underscore_and_digits(self):
        toks = non_layout("read_int2")
        assert toks[0].value == "read_int2"

    def test_keywords_are_not_identifiers(self):
        toks = non_layout("while parallel lock def")
        assert [t.type for t in toks] == [
            TT.KW_WHILE, TT.KW_PARALLEL, TT.KW_LOCK, TT.KW_DEF
        ]

    def test_keyword_prefix_is_identifier(self):
        # 'iffy' starts with 'if' but is a plain identifier.
        toks = non_layout("iffy")
        assert toks[0].type is TT.IDENT

    def test_true_false_are_keywords(self):
        toks = non_layout("true false")
        assert [t.type for t in toks] == [TT.KW_TRUE, TT.KW_FALSE]

    def test_all_operators(self):
        text = "+ - * / % ** == != < <= > >= = += -= *= /= %="
        expected = [
            TT.PLUS, TT.MINUS, TT.STAR, TT.SLASH, TT.PERCENT, TT.STARSTAR,
            TT.EQ, TT.NE, TT.LT, TT.LE, TT.GT, TT.GE, TT.ASSIGN,
            TT.PLUS_ASSIGN, TT.MINUS_ASSIGN, TT.STAR_ASSIGN,
            TT.SLASH_ASSIGN, TT.PERCENT_ASSIGN,
        ]
        assert [t.type for t in non_layout(text)] == expected

    def test_unexpected_character(self):
        with pytest.raises(TetraSyntaxError, match="unexpected character"):
            tokenize("x = 1 @ 2")


class TestNumbers:
    def test_integer(self):
        tok = non_layout("42")[0]
        assert tok.type is TT.INT
        assert tok.value == 42

    def test_real_with_decimal_point(self):
        tok = non_layout("3.25")[0]
        assert tok.type is TT.REAL
        assert tok.value == 3.25

    def test_real_with_exponent(self):
        tok = non_layout("1e3")[0]
        assert tok.type is TT.REAL
        assert tok.value == 1000.0

    def test_real_with_signed_exponent(self):
        tok = non_layout("2.5e-2")[0]
        assert tok.value == 0.025

    def test_int_then_ellipsis_is_not_a_real(self):
        # [1...100]: the dots belong to the range, not the number.
        toks = non_layout("[1...100]")
        assert [t.type for t in toks] == [
            TT.LBRACKET, TT.INT, TT.ELLIPSIS, TT.INT, TT.RBRACKET
        ]

    def test_spaced_ellipsis(self):
        toks = non_layout("[1 ... 100]")
        assert TT.ELLIPSIS in [t.type for t in toks]

    def test_member_dot_tokenizes(self):
        # '.' is the member-access operator (class extension); it must not
        # be confused with a decimal point or the '...' range ellipsis.
        toks = non_layout("a.b")
        assert [t.type for t in toks] == [TT.IDENT, TT.DOT, TT.IDENT]


class TestStrings:
    def test_simple_string(self):
        tok = non_layout('"hello"')[0]
        assert tok.type is TT.STRING
        assert tok.value == "hello"

    def test_escapes(self):
        tok = non_layout(r'"a\nb\tc\\d\"e"')[0]
        assert tok.value == 'a\nb\tc\\d"e'

    def test_unknown_escape_is_error(self):
        with pytest.raises(TetraSyntaxError, match="unknown escape"):
            tokenize(r'"\q"')

    def test_unterminated_string(self):
        with pytest.raises(TetraSyntaxError, match="unterminated"):
            tokenize('"never ends')

    def test_newline_in_string(self):
        with pytest.raises(TetraSyntaxError, match="newline inside string"):
            tokenize('"broken\n"')

    def test_empty_string(self):
        assert non_layout('""')[0].value == ""

    def test_hash_inside_string_is_not_comment(self):
        tok = non_layout('"a # b"')[0]
        assert tok.value == "a # b"


class TestCommentsAndLayout:
    def test_comment_to_end_of_line(self):
        toks = non_layout("x = 1  # the answer\n")
        assert [t.type for t in toks] == [TT.IDENT, TT.ASSIGN, TT.INT]

    def test_comment_only_line_produces_nothing(self):
        assert types("# nothing here\n") == [TT.EOF]

    def test_blank_lines_are_skipped(self):
        text = "a = 1\n\n\nb = 2\n"
        newlines = [t for t in tokenize(text) if t.type is TT.NEWLINE]
        assert len(newlines) == 2

    def test_indent_dedent_pairing(self):
        text = "def f():\n    x = 1\n"
        ts = types(text)
        assert ts.count(TT.INDENT) == ts.count(TT.DEDENT) == 1

    def test_nested_blocks(self):
        text = (
            "def f():\n"
            "    if x:\n"
            "        y = 1\n"
            "    z = 2\n"
        )
        ts = types(text)
        assert ts.count(TT.INDENT) == 2
        assert ts.count(TT.DEDENT) == 2

    def test_dedent_to_unknown_level(self):
        text = "def f():\n        x = 1\n    y = 2\n"
        with pytest.raises(TetraIndentationError, match="unindent"):
            tokenize(text)

    def test_mixed_tabs_and_spaces_rejected(self):
        text = "def f():\n    x = 1\n\ty = 2\n"
        with pytest.raises(TetraIndentationError, match="mixes tabs"):
            tokenize(text)

    def test_all_tabs_is_fine(self):
        text = "def f():\n\tx = 1\n"
        assert TT.INDENT in types(text)

    def test_newlines_inside_brackets_are_joined(self):
        text = "x = [1,\n     2,\n     3]\n"
        newlines = [t for t in tokenize(text) if t.type is TT.NEWLINE]
        assert len(newlines) == 1

    def test_newlines_inside_parens_are_joined(self):
        text = "y = f(1,\n      2)\n"
        newlines = [t for t in tokenize(text) if t.type is TT.NEWLINE]
        assert len(newlines) == 1

    def test_eof_closes_open_blocks(self):
        text = "def f():\n    x = 1"  # no trailing newline
        ts = types(text)
        assert ts[-1] is TT.EOF
        assert ts.count(TT.DEDENT) == 1
        # A NEWLINE is synthesized before the dedents.
        assert TT.NEWLINE in ts

    def test_crlf_line_endings(self):
        text = "x = 1\r\ny = 2\r\n"
        toks = non_layout(text)
        assert len(toks) == 6


class TestSpans:
    def test_token_spans_point_into_source(self):
        text = "alpha = 42\n"
        toks = non_layout(text)
        for tok in toks:
            assert text[tok.span.start:tok.span.end] == tok.text

    def test_line_and_column_one_based(self):
        toks = non_layout("a\nbb\n")
        assert (toks[0].span.line, toks[0].span.column) == (1, 1)
        assert (toks[1].span.line, toks[1].span.column) == (2, 1)


class TestIndentTracker:
    def test_indent_width_spaces(self):
        assert indent_width("    ") == 4

    def test_indent_width_tab_stops(self):
        assert indent_width("\t") == 8
        assert indent_width("  \t") == 8  # tab advances to the next stop
        assert indent_width("\t ") == 9

    def test_transition_counts(self):
        tracker = IndentTracker()
        span = Span(0, 0, 1, 1)
        assert tracker.transition("    ", span) == (1, 0)
        assert tracker.transition("        ", span) == (1, 0)
        assert tracker.transition("", span) == (0, 2)

    def test_close_returns_open_depth(self):
        tracker = IndentTracker()
        span = Span(0, 0, 1, 1)
        tracker.transition("  ", span)
        tracker.transition("    ", span)
        assert tracker.close() == 2
