"""Standard-library tests: every builtin's happy path and error paths.

Most run through real Tetra programs so the registry's two halves (type
rule + implementation) are exercised together.
"""

import pytest

from conftest import run
from repro.errors import (
    TetraAssertionError,
    TetraIndexError,
    TetraIOError,
    TetraRuntimeError,
)
from repro.stdlib.io import CapturingIO
from repro.stdlib.registry import BUILTINS, catalog


def expr(text: str, setup: str = "") -> str:
    lines = [f"    {line}" for line in setup.split("\n") if line]
    body = "\n".join(lines)
    src = f"def main():\n{body}\n    print({text})\n"
    return run(src)[0]


class TestRegistry:
    def test_catalog_is_sorted_and_complete(self):
        cat = catalog()
        assert len(cat) == len(BUILTINS)
        assert all(b.doc for b in cat), "every builtin must be documented"

    def test_expected_builtins_present(self):
        expected = {
            "print", "read_int", "read_real", "read_string", "read_bool",
            "len", "str", "int", "real", "array", "copy", "assert",
            "clock", "sleep",
            "sqrt", "sin", "cos", "exp", "log", "floor", "ceil", "round",
            "abs", "min", "max", "pi",
            "substring", "find", "contains", "upper", "lower", "trim",
            "replace", "split", "join", "starts_with", "ends_with",
            "char_code", "char_from_code",
            "sum", "smallest", "largest", "sort", "reversed", "fill",
            "index_of", "concat",
        }
        assert expected <= set(BUILTINS)

    def test_duplicate_registration_rejected(self):
        from repro.stdlib.registry import Builtin, register

        with pytest.raises(ValueError, match="twice"):
            register(Builtin("len", lambda t: None, lambda a, io, s: None))


class TestConversions:
    def test_str_of_everything(self):
        assert expr('str(42) + str(1.5) + str(true) + str("x")') == "421.5truex"

    def test_str_of_array(self):
        assert expr("str([1, 2])") == "[1, 2]"

    def test_int_truncates_toward_zero(self):
        assert expr("int(2.9)") == "2"
        assert expr("int(-2.9)") == "-2"

    def test_int_of_string(self):
        assert expr('int("  -17 ")') == "-17"

    def test_int_of_bool(self):
        assert expr("int(true) + int(false)") == "1"

    def test_int_of_bad_string(self):
        with pytest.raises(TetraRuntimeError, match="cannot parse"):
            expr('int("twelve")')

    def test_real_of_int_and_string(self):
        assert expr("real(2)") == "2.0"
        assert expr('real("2.5")') == "2.5"

    def test_real_of_bad_string(self):
        with pytest.raises(TetraRuntimeError, match="cannot parse"):
            expr('real("pi")')


class TestArrayBuiltins:
    def test_array_constructor(self):
        assert expr('array(3, "x")') == "[x, x, x]"

    def test_array_zero_length(self):
        assert expr("len(array(0, 1))") == "0"

    def test_array_negative_length(self):
        with pytest.raises(TetraRuntimeError, match=">= 0"):
            expr("array(-1, 0)")

    def test_array_copies_initial_value(self):
        # Rows of a matrix built with array() must be independent.
        assert run("""
            def main():
                m = array(2, array(2, 0))
                m[0][0] = 9
                print(m)
        """) == ["[[9, 0], [0, 0]]"]

    def test_copy_is_deep(self):
        assert run("""
            def main():
                a = [[1], [2]]
                b = copy(a)
                b[0][0] = 9
                print(a, " ", b)
        """) == ["[[1], [2]] [[9], [2]]"]

    def test_sum_int_and_real(self):
        assert expr("sum([1, 2, 3])") == "6"
        assert expr("sum([1.5, 2.5])") == "4.0"

    def test_smallest_largest(self):
        assert expr("smallest([3, 1, 2])") == "1"
        assert expr("largest([3, 1, 2])") == "3"
        assert expr('largest(["a", "c", "b"])') == "c"

    def test_smallest_of_empty(self):
        with pytest.raises(TetraRuntimeError, match="empty"):
            expr("smallest(array(0, 1))")

    def test_sort_returns_new_array(self):
        assert run("""
            def main():
                a = [3, 1, 2]
                b = sort(a)
                print(a, " ", b)
        """) == ["[3, 1, 2] [1, 2, 3]"]

    def test_reversed(self):
        assert expr("reversed([1, 2, 3])") == "[3, 2, 1]"

    def test_fill_mutates_and_widens(self):
        assert run("""
            def main():
                xs = [1.5, 2.5]
                fill(xs, 3)
                print(xs)
        """) == ["[3.0, 3.0]"]

    def test_index_of_found_and_missing(self):
        assert expr("index_of([5, 6, 7], 6)") == "1"
        assert expr("index_of([5], 9)") == "-1"

    def test_concat(self):
        assert expr("concat([1, 2], [3])") == "[1, 2, 3]"


class TestMathBuiltins:
    def test_sqrt(self):
        assert expr("sqrt(9)") == "3.0"

    def test_sqrt_negative(self):
        with pytest.raises(TetraRuntimeError, match="not defined"):
            expr("sqrt(-1)")

    def test_trig_identity(self):
        assert run("""
            def main():
                x = 0.7
                v = sin(x) * sin(x) + cos(x) * cos(x)
                print(abs(v - 1.0) < 0.0000001)
        """) == ["true"]

    def test_exp_log_roundtrip(self):
        assert run("""
            def main():
                print(abs(log(exp(2.0)) - 2.0) < 0.0000001)
        """) == ["true"]

    def test_log_of_zero(self):
        with pytest.raises(TetraRuntimeError, match="not defined"):
            expr("log(0.0)")

    def test_floor_ceil(self):
        assert expr("floor(2.7)") == "2"
        assert expr("floor(-2.1)") == "-3"
        assert expr("ceil(2.1)") == "3"
        assert expr("ceil(-2.7)") == "-2"

    def test_round_ties_away_from_zero(self):
        assert expr("round(2.5)") == "3"
        assert expr("round(-2.5)") == "-3"
        assert expr("round(2.4)") == "2"

    def test_abs(self):
        assert expr("abs(-5)") == "5"
        assert expr("abs(-5.5)") == "5.5"

    def test_min_max_preserve_kind(self):
        assert expr("min(2, 3)") == "2"
        assert expr("max(2, 3)") == "3"
        assert expr("min(2, 3.0)") == "2.0"  # promotion to real

    def test_pi(self):
        assert expr("pi() > 3.14 and pi() < 3.15") == "true"

    def test_atan2(self):
        assert expr("abs(atan2(1.0, 1.0) - pi() / 4.0) < 0.0000001") == "true"


class TestStringBuiltins:
    def test_substring(self):
        assert expr('substring("hello", 1, 4)') == "ell"
        assert expr('substring("hello", 0, 0) + "!"') == "!"

    def test_substring_bounds(self):
        with pytest.raises(TetraIndexError, match="out of range"):
            expr('substring("hi", 0, 5)')

    def test_find_and_contains(self):
        assert expr('find("banana", "na")') == "2"
        assert expr('find("banana", "xyz")') == "-1"
        assert expr('contains("banana", "nan")') == "true"

    def test_case_functions(self):
        assert expr('upper("MiXed")') == "MIXED"
        assert expr('lower("MiXed")') == "mixed"

    def test_trim(self):
        assert expr('trim("  pad  ") + "!"') == "pad!"

    def test_replace(self):
        assert expr('replace("a-b-c", "-", "+")') == "a+b+c"

    def test_replace_empty_needle(self):
        with pytest.raises(TetraRuntimeError, match="empty"):
            expr('replace("x", "", "y")')

    def test_split_and_join(self):
        assert expr('split("a,b,c", ",")') == "[a, b, c]"
        assert expr('join(["x", "y"], "-")') == "x-y"

    def test_split_empty_separator(self):
        with pytest.raises(TetraRuntimeError, match="not be empty"):
            expr('split("ab", "")')

    def test_starts_ends_with(self):
        assert expr('starts_with("tetra", "tet")') == "true"
        assert expr('ends_with("tetra", "ra")') == "true"
        assert expr('starts_with("tetra", "ra")') == "false"

    def test_char_codes(self):
        assert expr('char_code("A")') == "65"
        assert expr("char_from_code(66)") == "B"

    def test_char_code_wrong_length(self):
        with pytest.raises(TetraRuntimeError, match="one character"):
            expr('char_code("AB")')

    def test_char_from_code_invalid(self):
        with pytest.raises(TetraRuntimeError, match="not a valid"):
            expr("char_from_code(-1)")


class TestAssertClockSleep:
    def test_assert_passes(self):
        assert run("""
            def main():
                assert(1 + 1 == 2)
                print("ok")
        """) == ["ok"]

    def test_assert_fails_with_message(self):
        with pytest.raises(TetraAssertionError, match="broke the law"):
            run("""
                def main():
                    assert(false, "broke the law")
            """)

    def test_assert_default_message(self):
        with pytest.raises(TetraAssertionError, match="assertion failed"):
            run("""
                def main():
                    assert(1 == 2)
            """)

    def test_clock_is_monotonic(self):
        assert run("""
            def main():
                a = clock()
                b = clock()
                print(b >= a)
        """) == ["true"]

    def test_sleep_rejects_negative(self):
        with pytest.raises(TetraRuntimeError, match="non-negative"):
            run("""
                def main():
                    sleep(-1.0)
            """)


class TestCapturingIO:
    def test_push_input(self):
        io = CapturingIO()
        io.push_input("42")
        assert io.read_line() == "42"

    def test_exhausted_input_raises(self):
        with pytest.raises(TetraIOError):
            CapturingIO().read_line()

    def test_lines_and_clear(self):
        io = CapturingIO()
        io.write("a\nb\n")
        assert io.lines() == ["a", "b"]
        io.clear()
        assert io.output == ""

    def test_empty_lines(self):
        assert CapturingIO().lines() == []
