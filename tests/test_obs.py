"""Observability-layer tests: tracing, metrics, profiling, virtual clocks.

Covers the :mod:`repro.obs` subsystem end to end — Chrome trace export and
metric aggregation on every backend, the per-line profiler, the
``clock()``-reads-the-backend-clock bugfix (virtual deltas equal charged
cost units on sim), coop-backend determinism (same seed, same bytes), the
uniform error-path diagnostics, and the REPL/IDE program-cache wiring.
"""

import json
import re
import textwrap

import pytest

from repro.api import (
    cached_parse,
    clear_program_cache,
    program_cache_info,
    run_source,
)
from repro.errors import TetraDeadlockError, TetraError, TetraThreadError
from repro.ide.session import IDESession
from repro.obs import chrome_trace, line_profile, render_profile
from repro.runtime import RuntimeConfig, SequentialBackend, SimBackend
from repro.runtime.coop import CoopBackend, RandomPolicy
from repro.stdlib.io import CapturingIO
from repro.tools.cli import main as cli_main
from repro.tools.repl import ReplSession

PARALLEL_PROGRAM = textwrap.dedent("""
    def work(n int) int:
        total = 0
        i = 0
        while i < n:
            total += i
            i += 1
        return total

    def main():
        total = 0
        parallel for i in [1 ... 8]:
            x = work(10 * i)
            lock tally:
                total += x
        parallel:
            a = work(5)
            b = work(5)
        print(total)
""")

BACKENDS = ["thread", "sequential", "coop", "sim"]


def run_with_obs(backend="sim", text=PARALLEL_PROGRAM, **kwargs):
    return run_source(text, backend=backend, cache=False,
                      trace=True, metrics=True, **kwargs)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------
class TestChromeTrace:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_is_valid_chrome_json(self, backend):
        result = run_with_obs(backend)
        doc = result.chrome_trace()
        text = json.dumps(doc)          # must be JSON-serializable
        loaded = json.loads(text)
        events = loaded["traceEvents"]
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["backend"] == backend
        assert events, "trace should not be empty"
        for ev in events:
            assert ev["ph"] in ("X", "M")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert ev["ts"] >= 0
                assert ev["dur"] >= 0
                assert ev["cat"]

    def test_trace_has_thread_and_group_spans(self):
        result = run_with_obs("sim")
        events = result.chrome_trace()["traceEvents"]
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        assert {"program", "thread", "fork", "lock"} <= cats
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert any("parallel for" in n for n in names)
        # Thread-name metadata maps every tid used by a span.
        meta_tids = {e["tid"] for e in events
                     if e["ph"] == "M" and e["name"] == "thread_name"}
        span_tids = {e["tid"] for e in events
                     if e["ph"] == "X" and e["pid"] == 1}
        assert span_tids <= meta_tids

    def test_sim_trace_includes_schedule_lane(self):
        result = run_with_obs("sim")
        events = result.chrome_trace()["traceEvents"]
        assert any(e["pid"] == 2 for e in events), \
            "sim traces carry the machine-model schedule as a second process"

    def test_untraced_run_raises(self):
        result = run_source(PARALLEL_PROGRAM, backend="sequential",
                            cache=False)
        assert result.obs is None
        with pytest.raises(ValueError):
            result.chrome_trace()

    def test_cli_writes_trace_file(self, tmp_path, capsys):
        prog = tmp_path / "p.ttr"
        prog.write_text(PARALLEL_PROGRAM)
        out = tmp_path / "trace.json"
        assert cli_main(["run", str(prog), "--backend", "sim",
                         "--trace", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metrics_shape_on_every_backend(self, backend):
        result = run_with_obs(backend)
        m = result.metrics
        assert m is not None
        d = m.to_dict()
        assert d["backend"] == backend
        assert d["wall_time_s"] >= 0
        assert d["threads"] >= 3  # main + workers + parallel children
        assert "tally" in d["locks"]
        assert d["locks"]["tally"]["acquisitions"] == 8
        assert len(d["parallel_for"]) == 1
        pf = d["parallel_for"][0]
        assert sum(pf["items"]) == 8
        assert pf["skew"] >= 1.0
        rendered = m.render()
        assert "lock tally" in rendered
        assert "load skew" in rendered

    def test_sim_metrics_carry_machine_verdict(self):
        m = run_with_obs("sim").metrics
        assert m.sim is not None
        assert m.sim["cores"] >= 1
        assert m.sim["makespan"] > 0
        assert m.sim["speedup"] == pytest.approx(
            m.sim["serial_makespan"] / m.sim["makespan"])
        # The machine model's verdict is authoritative on sim.
        assert m.estimated_speedup == pytest.approx(m.sim["speedup"])
        assert m.elapsed == pytest.approx(m.sim["makespan"])

    def test_virtual_busy_is_charged_work(self):
        """On sim, a worker that does twice the work shows about twice the
        busy units — lifetimes on the shared virtual clock would not."""
        m = run_with_obs("sim", config=RuntimeConfig(num_workers=8)).metrics
        busy = {label: b for label, b in m.thread_busy.items()
                if "worker" in label}
        assert len(busy) == 8
        w1 = next(b for lab, b in busy.items() if lab.startswith("worker 1 "))
        w8 = next(b for lab, b in busy.items() if lab.startswith("worker 8 "))
        assert w8 > 4 * w1  # work(80) vs work(10), minus fixed overhead

    def test_contended_lock_counted_on_coop(self):
        # Round-robin at every statement forces both threads inside the
        # spin loops to overlap their lock windows deterministically.
        text = textwrap.dedent("""
            def spin():
                i = 0
                lock shared:
                    while i < 20:
                        i += 1

            def main():
                parallel:
                    spin()
                    spin()
        """)
        result = run_source(text, backend=CoopBackend(), cache=False,
                            metrics=True)
        locks = result.metrics.locks["shared"]
        assert locks.acquisitions == 2
        assert locks.contended >= 1
        assert locks.wait_time > 0

    def test_metrics_without_locks_or_parallel_for(self):
        m = run_source("def main():\n    print(1)\n", backend="sequential",
                       cache=False, metrics=True).metrics
        assert m.locks == {}
        assert m.parallel_for == []
        assert "(no locks used)" in m.render()
        assert "(no parallel for)" in m.render()


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
class TestProfile:
    def test_sim_profile_charges_units_to_hot_lines(self):
        result = run_source(PARALLEL_PROGRAM, backend="sim", cache=False,
                            profile=True)
        rows = line_profile(result.obs)
        assert rows, "profile should have rows"
        # A line of work()'s loop body dominates the charged units.
        hottest_line = rows[0][0]
        assert hottest_line in (5, 6, 7)
        assert rows[0][2] > 0  # units populated on an accounting backend
        rendered = render_profile(result.obs)
        assert "hottest lines" in rendered

    def test_thread_profile_counts_statements(self):
        result = run_source(PARALLEL_PROGRAM, backend="thread", cache=False,
                            profile=True)
        rows = line_profile(result.obs)
        assert rows and rows[0][1] > 1  # hit counts, no unit accounting

    def test_cli_profile_prints_table(self, tmp_path, capsys):
        prog = tmp_path / "p.ttr"
        prog.write_text(PARALLEL_PROGRAM)
        assert cli_main(["run", str(prog), "--backend", "sim",
                         "--profile"]) == 0
        err = capsys.readouterr().err
        assert "hottest lines" in err
        assert "while i < n" in err  # source text is shown


# ----------------------------------------------------------------------
# clock() reads the backend clock (the cross-backend clock bugfix)
# ----------------------------------------------------------------------
CLOCK_PROGRAM = textwrap.dedent("""
    def work(n int) int:
        total = 0
        i = 0
        while i < n:
            total += i
            i += 1
        return total

    def main():
        t0 = clock()
        x = work(10)
        t1 = clock()
        y = work(20)
        t2 = clock()
        z = work(30)
        t3 = clock()
        print(t1 - t0)
        print(t2 - t1)
        print(t3 - t2)
""")


class TestBackendClock:
    def test_sim_now_advances_by_charged_units(self):
        backend = SimBackend()
        t0 = backend.now()
        backend.recorder.charge(50)
        assert backend.now() - t0 == 50.0

    @pytest.mark.parametrize("fast", [True, False])
    def test_sim_clock_deltas_are_deterministic_units(self, fast):
        first = run_source(CLOCK_PROGRAM, backend="sim", cache=False,
                           fast=fast).output
        second = run_source(CLOCK_PROGRAM, backend="sim", cache=False,
                            fast=fast).output
        assert first == second, "virtual deltas never vary run to run"
        d1, d2, d3 = (float(line) for line in first.splitlines())
        assert d1 > 0 and d1 == int(d1), "deltas are whole cost units"
        # work(n) is exactly linear in n, so the unit deltas are exactly
        # equidistant — host-clock readings could never satisfy this.
        assert d3 - d2 == d2 - d1

    def test_coop_clock_counts_scheduler_turns(self):
        first = run_source(CLOCK_PROGRAM, backend=CoopBackend(),
                           cache=False).output
        second = run_source(CLOCK_PROGRAM, backend=CoopBackend(),
                            cache=False).output
        assert first == second
        d1, d2, d3 = (float(line) for line in first.splitlines())
        assert d1 > 0 and d1 == int(d1)
        assert d3 - d2 == d2 - d1

    def test_thread_clock_still_wall_time(self):
        out = run_source(
            "def main():\n"
            "    t0 = clock()\n"
            "    sleep(0.02)\n"
            "    t1 = clock()\n"
            "    print(t1 - t0 >= 0.015)\n",
            backend="thread", cache=False).output
        assert out == "true\n"


# ----------------------------------------------------------------------
# Coop determinism: same seed, same bytes
# ----------------------------------------------------------------------
RACY_MAX = textwrap.dedent("""
    def main():
        largest = 0
        parallel for num in [90, 5]:
            if num > largest:
                largest = num
        print(largest)
""")


def coop_artifacts(seed: int, text: str = PARALLEL_PROGRAM):
    """(trace json bytes, metrics dict sans wall time) for one seeded run."""
    result = run_source(text, backend=CoopBackend(RandomPolicy(seed)),
                        cache=False, trace=True, metrics=True,
                        config=RuntimeConfig(num_workers=4))
    doc = result.chrome_trace()
    metrics = result.metrics.to_dict()
    metrics.pop("wall_time_s")
    return json.dumps(doc, sort_keys=True), metrics, result.output


class TestCoopDeterminism:
    def test_same_seed_same_bytes(self):
        a_trace, a_metrics, a_out = coop_artifacts(7)
        b_trace, b_metrics, b_out = coop_artifacts(7)
        assert a_out == b_out
        assert a_metrics == b_metrics
        assert a_trace == b_trace, \
            "same seed must reproduce the trace byte for byte"

    def test_different_seeds_can_change_racy_outcome(self):
        outputs = set()
        for seed in range(40):
            result = run_source(
                RACY_MAX, backend=CoopBackend(RandomPolicy(seed)),
                cache=False, config=RuntimeConfig(num_workers=2))
            outputs.add(result.output)
        assert len(outputs) > 1, \
            "RACY_MAX's lost update should be schedule-sensitive"


# ----------------------------------------------------------------------
# Uniform runtime-error diagnostics (the error-path bugfix)
# ----------------------------------------------------------------------
FAILING = textwrap.dedent("""
    def boom(x int) int:
        return 10 / x

    def main():
        parallel:
            a = boom(0)
            b = boom(0)
        print(a)
""")

DEADLOCK = textwrap.dedent("""
    def take_ab():
        lock a:
            x = 0
            while x < 5:
                x += 1
            lock b:
                y = 1

    def take_ba():
        lock b:
            x = 0
            while x < 5:
                x += 1
            lock a:
                y = 1

    def main():
        parallel:
            take_ab()
            take_ba()
""")


class TestErrorPaths:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cli_exit_nonzero_with_span(self, backend, tmp_path, capsys):
        prog = tmp_path / "p.ttr"
        prog.write_text(FAILING)
        assert cli_main(["run", str(prog), "--backend", backend]) == 1
        err = capsys.readouterr().err
        assert "division by zero" in err
        # The diagnostic must anchor at a source span (file:line:col plus a
        # caret snippet), not arrive as a bare message.
        assert re.search(r"p\.ttr:\d+:\d+:", err)
        assert "^" in err

    @pytest.mark.parametrize("backend", ["sequential", "sim"])
    def test_multiple_child_failures_aggregate(self, backend):
        with pytest.raises(TetraThreadError) as exc_info:
            run_source(FAILING, backend=backend, cache=False)
        assert "2 parallel threads failed" in str(exc_info.value)

    def test_coop_deadlock_carries_span(self):
        with pytest.raises(TetraDeadlockError) as exc_info:
            run_source(DEADLOCK, backend=CoopBackend(), cache=False,
                       config=RuntimeConfig(num_workers=2))
        exc = exc_info.value
        assert "deadlock" in exc.message
        assert exc.span.line > 0, "coop deadlocks must point at a lock site"

    def test_cli_metrics_printed_even_when_run_fails(self, tmp_path, capsys):
        prog = tmp_path / "p.ttr"
        prog.write_text(FAILING)
        assert cli_main(["run", str(prog), "--backend", "sequential",
                         "--metrics"]) == 1
        err = capsys.readouterr().err
        assert "division by zero" in err
        assert "run metrics" in err


# ----------------------------------------------------------------------
# REPL / IDE program-cache wiring
# ----------------------------------------------------------------------
class TestFrontEndCaching:
    def setup_method(self):
        clear_program_cache()

    def teardown_method(self):
        clear_program_cache()

    def test_cached_parse_hits_on_repeat(self):
        tag = object()
        p1, s1 = cached_parse("def f() int:\n    return 1\n", tag=tag)
        p2, _ = cached_parse("def f() int:\n    return 1\n", tag=tag)
        assert p1 is p2
        info = program_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_cached_parse_is_session_scoped(self):
        text = "def f() int:\n    return 1\n"
        pa, _ = cached_parse(text, tag="session-a")
        pb, _ = cached_parse(text, tag="session-b")
        assert pa is not pb, \
            "annotated ASTs must not leak across sessions"

    def test_repl_reruns_hit_the_cache(self):
        session = ReplSession(CapturingIO())
        session.run_statements("x = 1\n")
        before = program_cache_info()["hits"]
        session.run_statements("x = 1\n")
        assert program_cache_info()["hits"] == before + 1

    def test_repl_definitions_hit_the_cache(self):
        session = ReplSession(CapturingIO())
        text = "def f(n int) int:\n    return n + 1\n"
        session.define_functions(text)
        before = program_cache_info()["hits"]
        session.define_functions(text)
        assert program_cache_info()["hits"] == before + 1
        expr = session.try_parse_expression("f(41)")
        assert session.eval_expression(expr) == "42"

    def test_repl_cache_false_bypasses(self):
        session = ReplSession(CapturingIO(), cache=False)
        session.run_statements("x = 1\n")
        session.run_statements("x = 1\n")
        info = program_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0

    def test_two_repl_sessions_do_not_share_entries(self):
        a = ReplSession(CapturingIO())
        b = ReplSession(CapturingIO())
        a.run_statements("x = 1\n")
        before = program_cache_info()["hits"]
        b.run_statements("x = 1\n")
        assert program_cache_info()["hits"] == before, \
            "session b must miss: trees are annotated per session"

    def test_ide_rerun_hits_the_cache(self):
        session = IDESession('def main():\n    print("hi")\n')
        assert session.run() == "hi\n"
        before = program_cache_info()["hits"]
        assert session.run() == "hi\n"
        assert program_cache_info()["hits"] > before

    def test_ide_diagnostics_warm_the_cache_for_run(self):
        session = IDESession('def main():\n    print("hi")\n')
        assert session.diagnostics() == []
        before = program_cache_info()["hits"]
        session.run()
        assert program_cache_info()["hits"] > before

    def test_ide_diagnostics_still_list_all_errors(self):
        session = IDESession("def main():\n    x = yy\n    z = ww\n")
        diags = session.diagnostics()
        assert len(diags) == 2

    def test_ide_cache_false_bypasses(self):
        session = IDESession('def main():\n    print("hi")\n', cache=False)
        session.run()
        session.run()
        info = program_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0


# ----------------------------------------------------------------------
# Overhead contract: hooks vanish when disabled
# ----------------------------------------------------------------------
class TestDisabledOverhead:
    def test_disabled_run_creates_no_observer(self):
        result = run_source(PARALLEL_PROGRAM, backend="sequential",
                            cache=False)
        assert result.obs is None
        assert result.metrics is None
        assert result.backend.obs is None

    def test_lean_fast_path_survives_tracing_off(self):
        """The compiler stays on the lean prologue when observability is
        off (the <2% fib regression budget depends on this)."""
        from repro.api import compile_source
        from repro.interp import Interpreter

        program, source = compile_source("def main():\n    x = 1\n")
        interp = Interpreter(program, source,
                             backend=SequentialBackend(),
                             io=CapturingIO([]))
        assert interp._obs is None
        assert interp._compiled is not None
