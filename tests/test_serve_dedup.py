"""Execution-level deduplication in ``tetra serve``: request coalescing,
the pure-result cache, the determinism gate, and per-waiter cancel
semantics.

The legacy transport/pool suite (``test_serve.py``) runs with the result
cache off so it always exercises the live path; this file turns dedup on
and pins down its contract:

* N concurrent identical submissions execute **once** (one sandbox run,
  every waiter gets the full output and result);
* a repeated *pure* request is answered from the result cache without
  touching a sandbox — and anything the determinism analysis cannot
  prove pure (chaos, schedule recording, metrics, racy thread programs,
  ``clock()`` readers) re-executes every time;
* cancelling one waiter of a shared run detaches only that waiter; the
  *last* waiter's cancel kills the underlying execution; a request
  cancelled before dispatch never starts at all.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import EXIT_CANCELLED, EXIT_ERROR, EXIT_LIMIT
from repro.serve import ExecutionService, ServeConfig

SPIN = "def main():\n    x = 0\n    while true:\n        x = x + 1\n"
NOISY = 'def main():\n    while true:\n        print("aaaaaaaaaa")\n'
RACY = (
    "def main():\n"
    "    t = 0\n"
    "    parallel for i in [1 ... 8]:\n"
    "        t += 1\n"
    "    print(t)\n"
)
CLOCKY = "def main():\n    print(clock() >= 0)\n"
SLOW = (
    "def main():\n"
    '    print("pre")\n'
    "    sleep(0.4)\n"
    '    print("post")\n'
)

#: Identical SPIN request — same run_key every time it is submitted.
SPIN_REQ = {"source": SPIN, "time_limit": 25.0, "step_limit": 500_000_000}


def _hello(tag: str) -> str:
    """A pure program unique to one test (the sources — and so the cache
    keys — must not collide across tests sharing a service)."""
    return f'# {tag}\ndef main():\n    print("hello {tag}")\n'


def _cfg(**overrides) -> ServeConfig:
    defaults = dict(port=0, workers=2, rate=10_000.0, burst=10_000,
                    max_concurrent=64, watchdog_grace=2.0,
                    default_time_limit=10.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture(scope="module")
def svc():
    service = ExecutionService(_cfg())
    yield service
    service.shutdown()


def _executions(service) -> int:
    return service.pool.stats()["submitted"]


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_repeat_pure_run_hits_cache_not_sandbox(self, svc):
        req = {"source": _hello("pure")}
        first = svc.run(req)
        before = _executions(svc)
        second = svc.run(req)
        assert _executions(svc) == before  # no new sandbox run
        assert second["cached"] is True
        assert second["dedup"] == "cache"
        assert second["output"] == first["output"] == "hello pure\n"
        assert second["exit_code"] == 0
        assert svc.stats()["dedup"]["cache_hits"] >= 1

    def test_program_diagnostics_are_cached_too(self, svc):
        # Exit 1 is a deterministic *answer* (the program always divides
        # by zero), not a transient failure — it deserves the cache.
        req = {"source": "# diag\ndef main():\n    print(1 / 0)\n"}
        first = svc.run(req)
        assert first["exit_code"] == EXIT_ERROR
        before = _executions(svc)
        second = svc.run(req)
        assert _executions(svc) == before
        assert second["cached"] is True
        assert second["error"] == first["error"]

    @pytest.mark.parametrize("extra", [
        {"chaos_seed": 7},
        {"record_schedule": True},
        {"metrics": True},
    ])
    def test_instrumented_runs_are_never_cached(self, svc, extra):
        req = {"source": _hello(f"inst-{sorted(extra)[0]}"), **extra}
        svc.run(req)
        before = _executions(svc)
        result = svc.run(req)
        assert _executions(svc) == before + 1  # re-executed
        assert "cached" not in result

    def test_racy_thread_program_is_never_cached(self, svc):
        # The canonical lost-update program: replaying one sampled
        # schedule as truth would report its racy total as stable.
        req = {"source": "# racy-thread\n" + RACY, "workers": 4}
        svc.run(req)
        before = _executions(svc)
        result = svc.run(req)
        assert _executions(svc) == before + 1
        assert "cached" not in result

    def test_same_parallel_program_on_sim_is_cached(self, svc):
        # sim's virtual clock and fixed scheduler make the identical
        # program a pure function of the request.
        req = {"source": "# racy-sim\n" + RACY, "backend": "sim",
               "workers": 4}
        first = svc.run(req)
        assert first["output"] == "8\n"
        before = _executions(svc)
        second = svc.run(req)
        assert _executions(svc) == before
        assert second["cached"] is True
        assert second["output"] == "8\n"

    def test_clock_reader_is_never_cached(self, svc):
        req = {"source": "# clocky\n" + CLOCKY, "backend": "sequential"}
        svc.run(req)
        before = _executions(svc)
        svc.run(req)
        assert _executions(svc) == before + 1

    def test_guardrail_trips_are_never_cached(self, svc):
        # Exit 4 is an event of one execution under one budget race —
        # not a property of the program worth replaying.
        req = {"source": "# noisy\n" + NOISY, "output_limit": 2000,
               "step_limit": 10_000_000}
        first = svc.run(req)
        assert first["exit_code"] == EXIT_LIMIT
        before = _executions(svc)
        svc.run(req)
        assert _executions(svc) == before + 1

    def test_different_inputs_miss_the_cache(self, svc):
        src = "# inputs\ndef main():\n    print(read_string())\n"
        one = svc.run({"source": src, "inputs": ["alpha"]})
        two = svc.run({"source": src, "inputs": ["beta"]})
        assert one["output"] == "alpha\n"
        assert two["output"] == "beta\n"
        assert "cached" not in two

    def test_cache_size_zero_disables_storing(self):
        service = ExecutionService(_cfg(result_cache_size=0))
        try:
            req = {"source": _hello("nocache")}
            service.run(req)
            result = service.run(req)
            assert _executions(service) == 2
            assert "cached" not in result
        finally:
            service.shutdown()

    def test_cache_survives_a_restart_via_path(self, tmp_path):
        path = str(tmp_path / "results.json")
        first = ExecutionService(_cfg(result_cache_path=path))
        try:
            first.run({"source": _hello("persist")})
        finally:
            first.shutdown()  # saves the cache
        second = ExecutionService(_cfg(result_cache_path=path))
        try:
            result = second.run({"source": _hello("persist")})
            assert result["cached"] is True
            assert result["output"] == "hello persist\n"
            assert _executions(second) == 0  # never touched a sandbox
        finally:
            second.shutdown()


# ----------------------------------------------------------------------
# Coalescing + cancel semantics
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_identical_concurrent_submissions_execute_once(self):
        """Three waiters, one sandbox run; cancels peel off one waiter at
        a time and only the last one kills the execution."""
        service = ExecutionService(_cfg(workers=1))
        try:
            h1 = service.submit(dict(SPIN_REQ))
            deadline = time.monotonic() + 5.0
            while h1.worker_pid is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert h1.worker_pid is not None  # running, not queued
            h2 = service.submit(dict(SPIN_REQ))
            h3 = service.submit(dict(SPIN_REQ))
            assert h2.dedup == "coalesced"
            assert h3.dedup == "coalesced"
            assert h2.worker_pid == h1.worker_pid  # same sandbox
            assert _executions(service) == 1
            assert service.stats()["dedup"]["coalesced"] == 2
            assert len({h1.id, h2.id, h3.id}) == 3

            # Cancelling one waiter must not touch the shared run.
            assert service.cancel(h2.id, "first waiter leaves")
            assert h2.wait(5.0)["exit_code"] == EXIT_CANCELLED
            assert not h1.done.is_set()
            assert not h3.done.is_set()
            assert service.pool.stats()["cancelled"] == 0

            assert service.cancel(h1.id, "second waiter leaves")
            assert h1.wait(5.0)["exit_code"] == EXIT_CANCELLED
            assert not h3.done.is_set()
            assert service.pool.stats()["cancelled"] == 0

            # The last waiter's cancel kills the sandbox run itself.
            assert service.cancel(h3.id, "last waiter leaves")
            assert h3.wait(5.0)["exit_code"] == EXIT_CANCELLED
            deadline = time.monotonic() + 5.0
            while (service.pool.stats()["cancelled"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert service.pool.stats()["cancelled"] == 1
            assert service.stats()["dedup"]["inflight_shared"] == 0
            # The freed worker serves the next request.
            follow_up = service.run({"source": _hello("after-coalesce")})
            assert follow_up["exit_code"] == 0
        finally:
            service.shutdown()

    def test_waiters_all_receive_the_full_result(self):
        service = ExecutionService(_cfg(workers=1))
        try:
            req = {"source": "# fanout\n" + SLOW, "time_limit": 10.0}
            h1 = service.submit(dict(req))
            time.sleep(0.1)  # let "pre" print before the second join
            h2 = service.submit(dict(req))
            r1, r2 = h1.wait(10.0), h2.wait(10.0)
            assert r1["output"] == r2["output"] == "pre\npost\n"
            assert r1["exit_code"] == r2["exit_code"] == 0
            # Whether h2 attached mid-run or hit the cache just after the
            # finish, exactly one sandbox execution happened.
            assert _executions(service) == 1
            assert h2.dedup in ("coalesced", "cache")
            stats = service.stats()["dedup"]
            assert stats["coalesced"] + stats["cache_hits"] >= 1
        finally:
            service.shutdown()

    def test_queued_identical_requests_coalesce(self):
        """Coalescing applies while the shared run is still *queued* —
        the run needn't have reached a worker yet."""
        service = ExecutionService(_cfg(workers=1))
        try:
            blocker = service.submit(dict(SPIN_REQ))
            deadline = time.monotonic() + 5.0
            while blocker.worker_pid is None \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            req = {"source": _hello("queued")}
            h1 = service.submit(dict(req))   # pending behind the spin
            h2 = service.submit(dict(req))   # attaches to the queued run
            assert h2.dedup == "coalesced"
            assert _executions(service) == 2  # spin + one hello
            service.cancel(blocker.id, "unblock the queue")
            r1, r2 = h1.wait(10.0), h2.wait(10.0)
            assert r1["output"] == r2["output"] == "hello queued\n"
        finally:
            service.shutdown()

    def test_coalescing_disabled_runs_every_submission(self):
        service = ExecutionService(_cfg(workers=1, coalesce=False,
                                        result_cache_size=0))
        try:
            h1 = service.submit(dict(SPIN_REQ))
            h2 = service.submit(dict(SPIN_REQ))
            assert h2.dedup is None
            assert _executions(service) == 2
            service.cancel(h1.id, "cleanup")
            service.cancel(h2.id, "cleanup")
            h1.wait(5.0)
            h2.wait(5.0)
        finally:
            service.shutdown()

    def test_cancel_before_dispatch_never_starts_the_run(self, monkeypatch):
        """A request cancelled while still compiling must be marked dead
        so dispatch never hands it to the pool (not a 404, not a race)."""
        import repro.serve.service as service_mod

        service = ExecutionService(_cfg(workers=1))
        real = service_mod.cached_program
        entered = threading.Event()
        gate = threading.Event()

        def gated(source, name, entry):
            entered.set()
            assert gate.wait(10.0)
            return real(source, name, entry)

        monkeypatch.setattr(service_mod, "cached_program", gated)
        try:
            handles = []
            thread = threading.Thread(
                target=lambda: handles.append(
                    service.submit({"source": _hello("mid-compile")})))
            thread.start()
            assert entered.wait(5.0)
            # The submission is admitted and registered but not yet
            # dispatched; its id is the service's only in-flight run.
            (req_id,) = list(service._runs)
            assert service.cancel(req_id, "changed my mind")
            gate.set()
            thread.join(timeout=10.0)
            (handle,) = handles
            assert handle.wait(5.0)["exit_code"] == EXIT_CANCELLED
            assert _executions(service) == 0  # never reached the pool
            assert service.stats()["dedup"]["cancelled"] == 1
        finally:
            gate.set()
            service.shutdown()

    def test_cancel_of_unknown_id_still_reports_false(self, svc):
        assert svc.cancel("r0-ffffff") is False

    def test_stats_exposes_the_dedup_block(self, svc):
        dedup = svc.stats()["dedup"]
        for field in ("coalesced", "cache_hits", "executions",
                      "cancelled", "inflight_shared", "result_cache"):
            assert field in dedup
        cache = dedup["result_cache"]
        for field in ("size", "capacity", "hits", "misses", "stores"):
            assert field in cache
