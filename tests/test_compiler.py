"""Compiler tests: generated-code structure plus interpreter differentials.

The strongest check is differential: for every program, the compiled
module's output must equal the interpreter's byte for byte.
"""

import textwrap

import pytest

from repro.api import run_source
from repro.compiler import compile_to_python, load_compiled, run_compiled
from repro.errors import TetraDeadlockError, TetraIndexError
from repro.programs import ALL_PROGRAMS
from repro.stdlib.io import CapturingIO


def differential(text: str, inputs=None):
    text = textwrap.dedent(text)
    interpreted = run_source(text, inputs=list(inputs or [])).output
    compiled = run_compiled(text, inputs=list(inputs or [])).output
    assert compiled == interpreted, (
        f"compiled {compiled!r} != interpreted {interpreted!r}"
    )
    return compiled


class TestGeneratedCode:
    def test_module_is_valid_python(self):
        code = compile_to_python(ALL_PROGRAMS["figure1_factorial"])
        compile(code, "<test>", "exec")  # must not raise

    def test_functions_are_mangled(self):
        code = compile_to_python("def fact(x int) int:\n    return x\n")
        assert "def t_fact(v_x):" in code

    def test_int_division_lowered_to_helper(self):
        code = compile_to_python(
            "def main():\n    x = 7 / 2\n"
        )
        assert "rt.int_div" in code

    def test_real_division_lowered_to_checked_helper(self):
        code = compile_to_python(
            "def main():\n    x = 7.0 / 2.0\n"
        )
        assert "rt.real_div" in code

    def test_parallel_block_emits_nonlocal(self):
        code = compile_to_python(textwrap.dedent("""
            def main():
                parallel:
                    a = 1
                    b = 2
                print(a + b)
        """))
        assert "nonlocal v_a" in code
        assert "v_a = None" in code  # pre-initialized for the nonlocal
        assert "run_group" in code

    def test_parallel_for_worker_function(self):
        code = compile_to_python(textwrap.dedent("""
            def main():
                parallel for i in [1 ... 4]:
                    x = i
        """))
        assert "run_parallel_for" in code
        assert "nonlocal v_x" in code

    def test_lock_emits_context_manager(self):
        code = compile_to_python(textwrap.dedent("""
            def main():
                lock guard:
                    x = 1
        """))
        assert "_rt.lock('guard'" in code or '_rt.lock("guard"' in code

    def test_module_exposes_run(self):
        namespace = load_compiled(
            compile_to_python("def main():\n    print(1)\n")
        )
        assert callable(namespace["run"])

    def test_run_twice_fresh_state(self):
        namespace = load_compiled(compile_to_python(textwrap.dedent("""
            def main():
                x = 0
                lock a:
                    x = 1
                print(x)
        """)))
        first = CapturingIO()
        second = CapturingIO()
        namespace["run"](io=first)
        namespace["run"](io=second)
        assert first.output == second.output == "1\n"


class TestDifferentials:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_canonical_programs(self, name):
        differential(ALL_PROGRAMS[name], inputs=["6"])

    def test_numeric_torture(self):
        differential("""
            def main():
                print(7 / 2, " ", -7 / 2, " ", 7 % 3, " ", -7 % 3)
                print(2 ** 10, " ", 2 ** -1, " ", 2.5 ** 2)
                print(1 / 3, " ", 1.0 / 3.0)
                print(10 % 4, " ", 10.5 % 4.0)
        """)

    def test_string_handling(self):
        differential("""
            def main():
                s = "hello" + " " + "world"
                print(upper(s), " ", len(s))
                print(substring(s, 0, 5))
                print(split(s, " ")[1])
                print(s[4])
        """)

    def test_control_flow(self):
        differential("""
            def classify(n int) string:
                if n < 0:
                    return "neg"
                elif n == 0:
                    return "zero"
                else:
                    return "pos"

            def main():
                for n in [-2, 0, 7]:
                    print(classify(n))
                i = 0
                while true:
                    i += 1
                    if i > 3:
                        break
                print(i)
        """)

    def test_arrays_and_builtins(self):
        differential("""
            def main():
                xs = array(5, 1)
                fill(xs, 3)
                xs[2] = 10
                print(xs, " ", sum(xs), " ", largest(xs))
                print(sort([3, 1, 2]), " ", reversed([1, 2, 3]))
                print(index_of([5, 6], 6), " ", concat([1], [2]))
        """)

    def test_widening_consistency(self):
        differential("""
            def f(x real) real:
                return x / 2

            def main():
                r = 1.5
                r = 4
                print(r, " ", f(3))
                xs = [1.0]
                xs[0] = 7
                print(xs)
        """)

    def test_recursion(self):
        differential("""
            def ack(m int, n int) int:
                if m == 0:
                    return n + 1
                if n == 0:
                    return ack(m - 1, 1)
                return ack(m - 1, ack(m, n - 1))

            def main():
                print(ack(2, 3))
        """)

    def test_io_differential(self):
        differential("""
            def main():
                a = read_int()
                b = read_real()
                s = read_string()
                print(a, " ", b, " ", s)
        """, inputs=["3", "2.5", "words here"])

    def test_parallel_reduction(self):
        differential("""
            def main():
                total = 0
                parallel for i in [1 ... 100]:
                    lock total:
                        total += i
                print(total)
        """)


class TestCompiledRuntimeBehaviour:
    def test_runtime_errors_preserved(self):
        with pytest.raises(TetraIndexError):
            run_compiled("def main():\n    print([1][5])\n")

    def test_deadlock_detection_works_compiled(self):
        # Self re-entry is deterministic even with real threads.
        with pytest.raises(TetraDeadlockError, match="not re-entrant"):
            run_compiled(textwrap.dedent("""
                def main():
                    lock a:
                        lock a:
                            x = 1
            """))

    def test_worker_and_chunking_options(self):
        out = run_compiled(textwrap.dedent("""
            def main():
                total = 0
                parallel for i in [1 ... 20]:
                    lock t:
                        total += i
                print(total)
        """), num_workers=3, chunking="cyclic")
        assert out.output == "210\n"

    def test_background_joined_at_exit(self):
        out = run_compiled(textwrap.dedent("""
            def main():
                background:
                    print("late")
                print("early")
        """))
        assert sorted(out.lines()) == ["early", "late"]
