"""CLI tests for the analysis tooling: ``tetra sim``, ``tetra fmt``, and
the Gantt renderer they share."""

import pytest

from repro.tools.cli import main
from repro.runtime.cost import FREE_PARALLELISM
from repro.runtime.gantt import render_gantt
from repro.runtime.machine import Machine
from repro.runtime.taskgraph import Fork, Task, Work
from repro.programs import FIGURE_2_PARALLEL_SUM, primes_program


@pytest.fixture
def prog(tmp_path):
    def write(text, name="prog.ttr"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestSimCommand:
    def test_speedup_table(self, prog, capsys):
        assert main(["sim", prog(primes_program(300)), "--cores", "1,2,4"]) == 0
        out = capsys.readouterr().out
        assert "62" in out or "cores" in out
        lines = out.strip().split("\n")
        assert lines[0].strip() == "62"  # program output first
        assert "cores" in lines[1]
        assert any(line.strip().startswith("4") for line in lines)

    def test_timeline_gantt(self, prog, capsys):
        assert main(["sim", prog(primes_program(300)), "--cores", "1,4",
                     "--timeline", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "core 0 |" in out
        assert "legend:" in out
        assert "utilization" in out

    def test_bad_cores_argument(self, prog, capsys):
        assert main(["sim", prog(primes_program(100)), "--cores", "x,y"]) == 2

    def test_compile_error_reported(self, prog, capsys):
        assert main(["sim", prog("def main():\n    x = nope\n")]) == 1
        assert "name error" in capsys.readouterr().err

    def test_workers_and_chunking_options(self, prog, capsys):
        assert main(["sim", prog(primes_program(200)), "--cores", "1,2",
                     "--workers", "2", "--chunking", "cyclic"]) == 0


class TestFmtCommand:
    MESSY = (
        "def   main():\n"
        "    x=1+2 *3\n"
        "    print((x))\n"
    )

    def test_fmt_to_stdout(self, prog, capsys):
        assert main(["fmt", prog(self.MESSY)]) == 0
        out = capsys.readouterr().out
        assert "x = 1 + 2 * 3" in out
        assert "print(x)" in out

    def test_fmt_write_in_place(self, prog, capsys, tmp_path):
        path = prog(self.MESSY)
        assert main(["fmt", path, "--write"]) == 0
        content = open(path).read()
        assert "x = 1 + 2 * 3" in content
        # Idempotent: formatting again changes nothing.
        assert main(["fmt", path, "--write"]) == 0
        assert open(path).read() == content

    def test_fmt_preserves_figure2_meaning(self, prog, capsys):
        path = prog(FIGURE_2_PARALLEL_SUM)
        assert main(["fmt", path, "--write"]) == 0
        capsys.readouterr()
        assert main(["run", path]) == 0
        assert capsys.readouterr().out == "5050\n"

    def test_fmt_syntax_error(self, prog, capsys):
        assert main(["fmt", prog("def broken(:\n")]) == 1


class TestGanttRenderer:
    def build_result(self, cores=2):
        root = Task(0, "main")
        children = [Task(1, "left", [Work(40)]), Task(2, "right", [Work(40)])]
        root.items.append(Work(10))
        root.items.append(Fork(children, join=True))
        return Machine(cores, FREE_PARALLELISM).run(root)

    def test_rows_per_core(self):
        text = render_gantt(self.build_result(cores=3), width=30)
        assert text.count("core ") == 3

    def test_legend_names_tasks(self):
        text = render_gantt(self.build_result(), width=30)
        assert "A=main" in text
        assert "left" in text and "right" in text

    def test_width_respected(self):
        text = render_gantt(self.build_result(), width=24)
        row = text.split("\n")[0]
        bar = row.split("|")[1]
        assert len(bar) == 24

    def test_idle_cores_shown_as_dots(self):
        result = self.build_result(cores=4)  # only 2 tasks can run at once
        text = render_gantt(result, width=20)
        rows = [line for line in text.split("\n") if line.startswith("core")]
        assert any(set(row.split("|")[1]) == {"."} for row in rows)

    def test_empty_schedule(self):
        root = Task(0, "empty")
        result = Machine(1, FREE_PARALLELISM).run(root)
        assert render_gantt(result) == "(empty schedule)"
