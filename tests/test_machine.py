"""Machine-model tests on hand-built task graphs: makespans you can check
by hand, plus scheduling invariants."""

import pytest

from repro.errors import TetraDeadlockError
from repro.runtime.cost import FREE_PARALLELISM, CostModel
from repro.runtime.machine import Machine, speedup_curve
from repro.runtime.taskgraph import Acquire, Fork, Release, Task, TraceRecorder, Work

ZERO_TAX = FREE_PARALLELISM  # no overheads, no sharing tax


def fork_join(work_per_child, join=True):
    """root forks one child per entry, each doing the given work."""
    root = Task(0, "root")
    children = [Task(i + 1, f"c{i}", [Work(w)]) for i, w in enumerate(work_per_child)]
    root.items.append(Fork(children, join))
    return root


class TestMakespans:
    def test_sequential_work_only(self):
        root = Task(0, "root", [Work(100)])
        result = Machine(4, ZERO_TAX).run(root)
        assert result.makespan == 100
        assert result.total_work == 100

    def test_two_children_two_cores(self):
        result = Machine(2, ZERO_TAX).run(fork_join([50, 50]))
        assert result.makespan == 50

    def test_two_children_one_core(self):
        result = Machine(1, ZERO_TAX).run(fork_join([50, 50]))
        assert result.makespan == 100

    def test_imbalanced_children(self):
        # Makespan is bounded below by the largest task.
        result = Machine(4, ZERO_TAX).run(fork_join([10, 10, 10, 70]))
        assert result.makespan == 70

    def test_more_children_than_cores(self):
        # 8 × 10 units on 2 cores: perfect packing gives 40.
        result = Machine(2, ZERO_TAX).run(fork_join([10] * 8))
        assert result.makespan == 40

    def test_parent_work_after_join(self):
        root = fork_join([30, 30])
        root.items.append(Work(10))
        result = Machine(2, ZERO_TAX).run(root)
        assert result.makespan == 40

    def test_background_children_overlap_parent(self):
        root = Task(0, "root")
        child = Task(1, "bg", [Work(50)])
        root.items.append(Fork([child], join=False))
        root.items.append(Work(50))
        result = Machine(2, ZERO_TAX).run(root)
        assert result.makespan == 50

    def test_background_on_one_core_serializes(self):
        root = Task(0, "root")
        child = Task(1, "bg", [Work(50)])
        root.items.append(Fork([child], join=False))
        root.items.append(Work(50))
        result = Machine(1, ZERO_TAX).run(root)
        assert result.makespan == 100


class TestLockSerialization:
    def build_locked_pair(self, critical=40, outside=0):
        root = Task(0, "root")
        mk = lambda i: Task(i, f"c{i}", [
            Work(outside), Acquire("m"), Work(critical), Release("m"),
        ])
        root.items.append(Fork([mk(1), mk(2)], join=True))
        return root

    def test_critical_sections_serialize(self):
        # Two 40-unit critical sections cannot overlap: makespan 80 even
        # with plenty of cores.
        result = Machine(4, ZERO_TAX).run(self.build_locked_pair())
        assert result.makespan == 80

    def test_disjoint_locks_do_not_serialize(self):
        root = Task(0, "root")
        c1 = Task(1, "c1", [Acquire("a"), Work(40), Release("a")])
        c2 = Task(2, "c2", [Acquire("b"), Work(40), Release("b")])
        root.items.append(Fork([c1, c2], join=True))
        result = Machine(2, ZERO_TAX).run(root)
        assert result.makespan == 40

    def test_lock_wait_time_recorded(self):
        result = Machine(4, ZERO_TAX).run(self.build_locked_pair())
        assert result.lock_wait_time == pytest.approx(40)

    def test_opposite_order_deadlock_detected(self):
        root = Task(0, "root")
        c1 = Task(1, "c1", [Acquire("a"), Work(10), Acquire("b"),
                            Work(1), Release("b"), Release("a")])
        c2 = Task(2, "c2", [Acquire("b"), Work(10), Acquire("a"),
                            Work(1), Release("a"), Release("b")])
        root.items.append(Fork([c1, c2], join=True))
        with pytest.raises(TetraDeadlockError, match="opposite orders"):
            Machine(2, ZERO_TAX).run(root)


class TestInvariants:
    @pytest.mark.parametrize("cores", [1, 2, 3, 4, 8])
    def test_makespan_bounds(self, cores):
        root = fork_join([13, 27, 8, 41, 19, 6])
        result = Machine(cores, ZERO_TAX).run(root)
        work = result.total_work
        # Graham bounds for list scheduling without locks.
        assert result.makespan >= work / cores - 1e-9
        assert result.makespan >= result.critical_path
        assert result.makespan <= work

    def test_monotone_in_cores(self):
        root = fork_join([13, 27, 8, 41, 19, 6, 33, 2])
        spans = [Machine(m, ZERO_TAX).run(root).makespan for m in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)

    def test_determinism(self):
        root = fork_join([5, 9, 1, 7, 3])
        results = [Machine(3, ZERO_TAX).run(root).makespan for _ in range(3)]
        assert len(set(results)) == 1

    def test_utilization_in_unit_range(self):
        result = Machine(4, ZERO_TAX).run(fork_join([10, 20, 30]))
        assert 0 < result.utilization <= 1

    def test_sharing_tax_inflates_parallel_work(self):
        taxed = CostModel(sharing_tax_percent=10, thread_spawn=0,
                          thread_join=0, lock_acquire=0, lock_release=0)
        root = fork_join([100, 100])
        plain = Machine(2, ZERO_TAX).run(root).makespan
        inflated = Machine(2, taxed).run(root).makespan
        assert inflated > plain

    def test_zero_core_machine_rejected(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_speedup_curve_includes_baseline(self):
        curve = speedup_curve(fork_join([10, 20]), [4], ZERO_TAX)
        assert set(curve) == {1, 4}
        assert curve[4].speedup_against(curve[1]) >= 1.0


class TestTaskGraph:
    def test_charge_merges_consecutive_work(self):
        rec = TraceRecorder()
        rec.charge(5)
        rec.charge(7)
        assert rec.root.items == [Work(12)]

    def test_charge_zero_ignored(self):
        rec = TraceRecorder()
        rec.charge(0)
        assert rec.root.items == []

    def test_fork_recording(self):
        rec = TraceRecorder()
        children = rec.begin_fork(["a", "b"], join=True)
        rec.enter_child(children[0])
        rec.charge(3)
        rec.exit_child()
        rec.enter_child(children[1])
        rec.charge(4)
        rec.exit_child()
        assert rec.root.task_count() == 3
        assert rec.root.subtree_work() == 7

    def test_self_reentry_detected_by_recorder(self):
        rec = TraceRecorder()
        assert rec.acquire("m") is True
        assert rec.acquire("m") is False

    def test_critical_path_of_nested_forks(self):
        rec = TraceRecorder()
        rec.charge(10)
        (child,) = rec.begin_fork(["c"], join=True)
        rec.enter_child(child)
        rec.charge(20)
        rec.exit_child()
        rec.charge(5)
        assert rec.root.critical_path() == 35

    def test_max_parallelism(self):
        root = fork_join([1, 1, 1])
        assert root.max_parallelism() == 3
