"""Unit tests for the shared/private symbol tables and thread contexts —
the machinery behind the paper's 'private and shared symbol tables' (§IV).
"""

import pytest

from repro.errors import TetraInternalError
from repro.interp.context import CallRecord, ThreadContext
from repro.runtime.env import Environment, Frame


class TestFrameAndEnvironment:
    def test_reads_fall_through_to_frame(self):
        frame = Frame("f")
        frame.vars["x"] = 1
        env = Environment(frame)
        assert env.get("x") == 1
        assert env.has("x")

    def test_writes_go_to_frame_by_default(self):
        frame = Frame("f")
        env = Environment(frame)
        env.set("y", 2)
        assert frame.vars["y"] == 2

    def test_private_shadows_shared(self):
        frame = Frame("f")
        frame.vars["i"] = 99
        env = Environment(frame, {"i": 1})
        assert env.get("i") == 1
        env.set("i", 2)
        assert env.get("i") == 2
        assert frame.vars["i"] == 99  # the shared copy is untouched

    def test_child_with_private_layers(self):
        frame = Frame("f")
        frame.vars["shared"] = 0
        outer = Environment(frame, {"i": 1})
        inner = outer.child_with_private({"j": 2})
        # The inner worker sees both induction variables plus the frame.
        assert inner.get("i") == 1
        assert inner.get("j") == 2
        assert inner.get("shared") == 0
        # But writes to its own private var do not leak to the outer view.
        inner.set("j", 5)
        assert "j" not in outer.private

    def test_snapshot_merges_with_private_priority(self):
        frame = Frame("f")
        frame.vars.update({"a": 1, "i": 10})
        env = Environment(frame, {"i": 2})
        snap = env.snapshot()
        assert snap == {"a": 1, "i": 2}

    def test_names_are_deduplicated(self):
        frame = Frame("f")
        frame.vars.update({"a": 1, "i": 10})
        env = Environment(frame, {"i": 2})
        names = list(env.names())
        assert sorted(names) == ["a", "i"]
        assert names.count("i") == 1

    def test_unbound_read_is_internal_error(self):
        env = Environment(Frame("f"))
        with pytest.raises(TetraInternalError, match="before any assignment"):
            env.get("ghost")


class TestThreadContext:
    def test_ids_are_unique_and_increasing(self):
        a = ThreadContext("a")
        b = ThreadContext("b")
        assert b.id > a.id

    def test_spawn_child_copies_call_stack(self):
        frame = Frame("main")
        env = Environment(frame)
        parent = ThreadContext("parent", env)
        parent.call_stack.append(CallRecord("main", env))
        child = parent.spawn_child("child", env)
        assert child.call_stack == parent.call_stack
        assert child.call_stack is not parent.call_stack
        child.call_stack.append(CallRecord("helper", env))
        assert parent.depth == 1
        assert child.depth == 2

    def test_current_function(self):
        ctx = ThreadContext("t")
        assert ctx.current_function == "<toplevel>"
        env = Environment(Frame("work"))
        ctx.call_stack.append(CallRecord("work", env))
        assert ctx.current_function == "work"

    def test_repr_mentions_label(self):
        ctx = ThreadContext("worker 3")
        assert "worker 3" in repr(ctx)
