"""Per-tier wall-clock comparison: walker vs. fast path vs. proc vs. native.

The native compiled tier's claim (DESIGN.md §2c) is that type-checked
numeric kernels escape the interpreter loop entirely: the hot function and
the ``parallel for`` body run as machine code, so the speedup is orthogonal
to — and multiplies with — real-core parallelism.  This script measures it
on two numeric workloads:

* **primes** — trial-division prime counting, a branchy integer kernel
  with a lock-reduction ``parallel for`` (the paper's own workload);
* **matmul** — the inner loop of a dense integer matrix multiply, an
  array-indexing kernel whose rows are computed by a ``parallel for``.

Each workload runs on four tiers sharing one source program:

* ``walker``  — the seed tree-walking interpreter (``fast=False``);
* ``fast``    — the AST→closure fast path (the default pipeline);
* ``proc``    — the process-parallel backend at machine-core workers;
* ``native``  — ``--native=require``: C kernels on OS threads.

Usage::

    python benchmarks/bench_native_tiers.py --json BENCH_parallel_speedup.json

When the JSON file already holds the proc speedup study, the per-tier
section is merged in under ``"tiers"`` (the existing keys are preserved).
The acceptance floor: native at least 5x over the fast path on both
kernels — pure single-thread compiled-code gains, so it applies even on
one core.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import run_source  # noqa: E402
from repro.compiler.native import find_compiler  # noqa: E402
from repro.runtime import RuntimeConfig  # noqa: E402

MIN_NATIVE_VS_FAST = 5.0

PRIMES = """\
def is_prime(n int) bool:
    if n < 2:
        return false
    if n % 2 == 0:
        return n == 2
    d = 3
    while d * d <= n:
        if n % d == 0:
            return false
        d += 2
    return true

def main():
    count = 0
    parallel for n in [2 ... {limit}]:
        if is_prime(n):
            lock c:
                count += 1
    print(count)
"""

MATMUL = """\
def row(a [int], b [int], c [int], n int, i int):
    j = 0
    while j < n:
        total = 0
        k = 0
        while k < n:
            total += a[i * n + k] * b[k * n + j]
            k += 1
        c[i * n + j] = total
        j += 1

def main():
    n = {n}
    a = [0 ... n * n - 1]
    b = [0 ... n * n - 1]
    c = [0 ... n * n - 1]
    i = 0
    while i < n * n:
        a[i] = i % 17
        b[i] = i % 23
        c[i] = 0
        i += 1
    parallel for r in [0 ... n - 1]:
        row(a, b, c, n, r)
    check = 0
    for i in [0 ... n * n - 1]:
        check += c[i]
    print(check)
"""


def _time_tier(source, tier, jobs, repeats):
    kwargs = {}
    if tier == "walker":
        kwargs = {"fast": False, "cache": False}
    elif tier == "proc":
        kwargs = {"backend": "proc",
                  "config": RuntimeConfig(num_workers=jobs)}
    elif tier == "native":
        kwargs = {"native": "require",
                  "config": RuntimeConfig(num_workers=jobs)}
    # One untimed warm-up: the fast path compiles closures into the
    # program cache, the native tier builds (or dlopens) its .so, proc
    # spins up its pool.  Steady state is what the tier comparison is
    # about; cold-start costs are covered by the artifact-cache tests.
    run_source(source, **kwargs)
    best, output = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_source(source, **kwargs)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
        output = result.output
    return best, output


def run_workload(name, source, jobs, repeats):
    print(f"{name}:")
    timings = {}
    baseline_out = None
    for tier in ("walker", "fast", "proc", "native"):
        seconds, output = _time_tier(source, tier, jobs, repeats)
        if baseline_out is None:
            baseline_out = output
        elif output != baseline_out:
            raise SystemExit(
                f"{name}: tier '{tier}' output diverged: "
                f"{output!r} != {baseline_out!r}")
        timings[tier] = seconds
        print(f"  {tier:<8} {seconds * 1000:9.1f} ms")
    entry = {
        "output": baseline_out.strip(),
        "seconds": {t: round(s, 6) for t, s in timings.items()},
        "speedup_vs_walker": {
            t: round(timings["walker"] / s, 2) if s > 0 else 0.0
            for t, s in timings.items()},
        "native_vs_fast": round(timings["fast"] / timings["native"], 2)
        if timings["native"] > 0 else 0.0,
    }
    print(f"  native vs fast path: {entry['native_vs_fast']:.1f}x "
          f"(target >= {MIN_NATIVE_VS_FAST:.0f}x)")
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="wall-clock per-tier comparison on numeric kernels")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workloads, single repetition (CI)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="merge a 'tiers' section into this JSON file")
    args = parser.parse_args(argv)

    if find_compiler() is None:
        print("no C compiler on this machine; the native tier cannot run")
        return 1

    cores = os.cpu_count() or 1
    repeats = 1 if args.smoke else 3
    primes_limit = 20000 if args.smoke else 60000
    matmul_n = 48 if args.smoke else 96

    print(f"per-tier benchmark on {cores} core(s), "
          f"jobs={cores}, repeats={repeats}")
    workloads = {
        "primes": run_workload(
            f"primes up to {primes_limit}",
            PRIMES.format(limit=primes_limit), cores, repeats),
        "matmul": run_workload(
            f"matmul {matmul_n}x{matmul_n} (int)",
            MATMUL.format(n=matmul_n), cores, repeats),
    }
    met = all(w["native_vs_fast"] >= MIN_NATIVE_VS_FAST
              for w in workloads.values())
    print(f"native >= {MIN_NATIVE_VS_FAST:.0f}x over fast path on both "
          f"kernels -> {'met' if met else 'NOT met'}")

    if args.json:
        payload = {}
        if os.path.exists(args.json):
            with open(args.json, encoding="utf-8") as handle:
                payload = json.load(handle)
        payload["tiers"] = {
            "machine_cores": cores,
            "mode": "smoke" if args.smoke else "full",
            "workloads": workloads,
            "target_native_vs_fast": MIN_NATIVE_VS_FAST,
            "target_met": met,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if met else 1


if __name__ == "__main__":
    raise SystemExit(main())
