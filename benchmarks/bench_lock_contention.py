"""Ablation: the Figure III double-check-then-lock idiom.

Figure III checks ``num > largest`` *before* taking the lock and again
inside it.  The paper explains the second check; this ablation quantifies
the first one: locking on every iteration serializes the whole loop, while
the double-check only pays for contenders.  Regenerates the design-choice
row of DESIGN.md §3.
"""

import textwrap

import pytest

from conftest import format_table
from workloads import record_trace, speedup_rows

N = 400

# The input is shuffled (i * 7919 mod 10007): each worker expects only a
# handful of running maxima, so the double-check's lock-free fast path does
# almost all the filtering.  An ascending input would be the adversarial
# case where every element locks either way.
_FILL = f"""\
    nums = array({N}, 0)
    i = 0
    while i < {N}:
        nums[i] = (i * 7919) % 10007
        i += 1
"""

DOUBLE_CHECK = f"""\
def max_of(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
{_FILL}    print(max_of(nums))
"""

LOCK_ALWAYS = f"""\
def max_of(nums [int]) int:
    largest = 0
    parallel for num in nums:
        lock largest:
            if num > largest:
                largest = num
    return largest

def main():
{_FILL}    print(max_of(nums))
"""

EXPECTED_MAX = max((i * 7919) % 10007 for i in range(N))


@pytest.fixture(scope="module")
def traces():
    return {
        "double-check": record_trace(DOUBLE_CHECK, cores=8),
        "lock-always": record_trace(LOCK_ALWAYS, cores=8),
    }


def test_both_variants_correct(benchmark, traces):
    from repro.api import run_source

    def check():
        for src in (DOUBLE_CHECK, LOCK_ALWAYS):
            assert run_source(src, backend="sequential").output_lines() == [str(EXPECTED_MAX)]

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_lock_granularity_ablation(benchmark, traces, report):
    benchmark(lambda: traces["double-check"].schedule(8))
    rows = []
    stats = {}
    for name, backend in traces.items():
        result = backend.schedule(8)
        acquires = sum(
            1 for task in backend.trace.walk() for item in task.items
            if type(item).__name__ == "Acquire"
        )
        stats[name] = (result.makespan, result.lock_wait_time, acquires)
        rows.append([
            name,
            round(result.makespan),
            round(result.lock_wait_time),
            acquires,
        ])
    report.emit("Ablation: Figure III lock granularity (8 cores)", [
        *format_table(
            ["variant", "virtual time", "lock wait", "lock acquisitions"],
            rows,
        ),
        "the double-check idiom locks only on candidate maxima (a handful "
        "per worker on shuffled input); locking every iteration pays "
        f"~{N} acquisitions and serializes the loop body.",
    ])
    # Fewer acquisitions, less waiting, lower makespan.
    assert stats["double-check"][2] < stats["lock-always"][2] / 10
    assert stats["double-check"][1] <= stats["lock-always"][1]
    assert stats["double-check"][0] < stats["lock-always"][0]


def test_lock_always_contends(benchmark, traces):
    backend = traces["lock-always"]
    benchmark(lambda: backend.schedule(8))
    # Every iteration takes the same lock: contention wait must be visible.
    assert backend.schedule(8).lock_wait_time > 0


def test_recording_cost_double_check(benchmark):
    benchmark.pedantic(lambda: record_trace(DOUBLE_CHECK, cores=8),
                       rounds=3, iterations=1)
