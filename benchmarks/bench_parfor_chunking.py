"""Ablation: ``parallel for`` iteration assignment (block/cyclic/dynamic).

No single policy dominates — the winner depends on how iteration cost
varies across the index space, and this ablation shows all directions:

* **Triangular workload** (cost grows smoothly with the index): block
  chunking concentrates the expensive tail in the last worker; cyclic
  deals it out evenly and wins.
* **Trial-division primes**: cost correlates with *parity* (even candidates
  exit immediately), and a cyclic stride of 8 aliases with parity — the
  even-offset workers get only cheap composites while odd-offset workers
  get every expensive prime.  Block chunks mix parities and win.
* **Skewed workload** (a handful of iterations in the tail dominate the
  total cost): block hands the whole expensive tail to the last worker;
  ``dynamic`` — guided decreasing chunk sizes, so the tail is split into
  many small pieces spread across workers — balances it.

A lesson the paper's classroom setting would care about: data-dependent
iteration costs interact with the assignment stride.
"""

import textwrap

import pytest

from conftest import format_table
from workloads import primes_source, record_trace

PRIMES_LIMIT = 1200

TRIANGULAR = textwrap.dedent("""
    def weigh(n int) int:
        t = 0
        j = 0
        while j < n:
            t += j
            j += 1
        return t

    def main():
        results = array(97, 0)
        parallel for i in [1 ... 96]:
            results[i] = weigh(i)
        print(sum(results))
""")

# Cost is negligible for the first ~5/6 of the index space, then explodes
# quadratically in the tail — the adversarial case for static block
# assignment (the last worker inherits nearly all the work).
SKEWED = textwrap.dedent("""
    def weigh(n int) int:
        t = 0
        j = 0
        while j < n:
            t += j
            j += 1
        return t

    def main():
        results = array(97, 0)
        parallel for i in [1 ... 96]:
            if i > 80:
                results[i] = weigh((i - 80) * (i - 80))
            else:
                results[i] = i
        print(sum(results))
""")


def spread_and_speedup(backend):
    workers = [t for t in backend.trace.walk() if t is not backend.trace]
    works = sorted(t.total_work for t in workers)
    curve = backend.speedups([8])
    return (works[-1] / max(1, works[0]),
            curve[8].speedup_against(curve[1]),
            round(curve[8].makespan))


@pytest.fixture(scope="module")
def traces():
    sources = {
        "primes": primes_source(PRIMES_LIMIT),
        "triangular": TRIANGULAR,
        "skewed": SKEWED,
    }
    return {
        (workload, chunking): record_trace(src, cores=8, chunking=chunking)
        for workload, src in sources.items()
        for chunking in ("block", "cyclic", "dynamic")
    }


def test_chunking_correctness(benchmark, traces):
    from repro.api import run_source
    from repro.runtime import RuntimeConfig

    def collect():
        results = []
        for src in (primes_source(PRIMES_LIMIT), TRIANGULAR, SKEWED):
            outs = {
                run_source(src, backend="sequential",
                           config=RuntimeConfig(chunking=c)).output
                for c in ("block", "cyclic", "dynamic")
            }
            assert len(outs) == 1, "chunking changed the answer"
            results.append(outs.pop())
        return results

    benchmark.pedantic(collect, rounds=1, iterations=1)


def test_chunking_ablation(benchmark, traces, report):
    benchmark(lambda: traces[("primes", "cyclic")].schedule(8))
    rows = []
    stats = {}
    for (workload, chunking), backend in traces.items():
        spread, s8, makespan = spread_and_speedup(backend)
        stats[(workload, chunking)] = (spread, s8)
        rows.append([workload, chunking, round(spread, 2), makespan,
                     round(s8, 2)])
    report.emit("Ablation: parallel-for chunking vs workload structure (8 cores)", [
        *format_table(
            ["workload", "chunking", "work max/min", "virtual time",
             "speedup"], rows,
        ),
        "triangular cost ramps with the index -> cyclic balances it;",
        "trial division costs alias with parity -> a cyclic stride of 8 "
        "sends all cheap even candidates to the same workers and loses;",
        "skewed tail spikes -> block strands the tail in one worker, "
        "dynamic's guided chunks split it finely and win.",
    ])
    # Opposite winners on the two classic workloads.
    assert stats[("triangular", "cyclic")][1] > stats[("triangular", "block")][1]
    assert stats[("primes", "block")][1] > stats[("primes", "cyclic")][1]
    # And the speedup gap is explained by the balance gap.
    assert stats[("triangular", "cyclic")][0] < stats[("triangular", "block")][0]
    assert stats[("primes", "block")][0] < stats[("primes", "cyclic")][0]
    # The skewed tail is the dynamic policy's home turf: guided chunks
    # both beat block's stranded tail and improve its balance.
    assert stats[("skewed", "dynamic")][1] > stats[("skewed", "block")][1]
    assert stats[("skewed", "dynamic")][0] < stats[("skewed", "block")][0]


def test_recording_cost_cyclic(benchmark):
    benchmark.pedantic(
        lambda: record_trace(primes_source(PRIMES_LIMIT), cores=8,
                             chunking="cyclic"),
        rounds=3, iterations=1,
    )
