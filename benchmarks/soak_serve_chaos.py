"""Chaos soak for ``tetra serve``: the CI gate for overload resilience.

Boots a **real server subprocess** with a fixed ``--chaos-serve`` seed
(worker kills, pipe faults, compile stalls — the full serve-layer fault
plan), hammers it over HTTP with a classroom-shaped burst that includes
a deterministic poison program, then SIGTERMs it mid-traffic and
verifies the graceful drain.  Asserts the standing invariants:

* every request is answered — no hung client, no wedged server thread
  (the process must also *exit* within the drain deadline);
* only expected statuses appear: 2xx, 422 (compile reject), 408
  (guardrail), 499 (cancelled), 503 (shed / quarantined / draining),
  and 500 **only** in the worker-loss shape (``cause`` crash/infra),
  never an unexplained internal error;
* shed responses are fast and carry ``Retry-After``;
* no quota slot leaks (``active_runs == 0`` once the burst settles);
* the poison program's sandbox executions are capped by the circuit
  breaker at ≪ its submission count;
* SIGTERM exits **0** with the result-cache file intact (valid JSON).

Writes a JSON report (``--json``, default ``soak_serve_chaos.json``)
that CI uploads as an artifact.  Exit status 0 = all invariants held.
"""

import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.join(os.path.dirname(__file__), "..")
POISON_MARKER = "chaos:poison"

HELLO = 'def main():\n    print("hello")\n'
COUNT = "def main():\n    for i in [0 ... 3]:\n        print(i)\n"
POISON = (f"def main():\n    # {POISON_MARKER}\n"
          "    x = 0\n    while true:\n        x = x + 1\n")
SPIN = "def main():\n    x = 0\n    while true:\n        x = x + 1\n"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _post(base: str, path: str, payload: dict, tenant: str,
          timeout: float = 60.0):
    req = urllib.request.Request(
        base + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json",
                 "X-Tetra-Tenant": tenant})
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return (time.perf_counter() - t0, resp.status,
                    json.loads(resp.read()), dict(resp.headers))
    except urllib.error.HTTPError as err:
        return (time.perf_counter() - t0, err.code,
                json.loads(err.read()), dict(err.headers))


def _get_json(base: str, path: str, timeout: float = 30.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="chaos soak against a real tetra serve subprocess")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--requests", type=int, default=240,
                        help="burst size before the drain (default 240)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--json", default="soak_serve_chaos.json",
                        metavar="FILE")
    args = parser.parse_args(argv)

    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    cache_path = f"soak_cache_{port}.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "serve",
         "--port", str(port), "--workers", "2",
         "--chaos-serve", str(args.seed),
         "--max-queue", "8", "--breaker-threshold", "3",
         "--breaker-backoff", "600", "--infra-retries", "2",
         "--drain-grace", "5",
         # The soak measures the serve-layer overload machinery; park
         # the per-tenant token bucket out of the way so 429s don't
         # mask shed/breaker behaviour (quotas have their own tests).
         "--rate", "100000", "--burst", "100000",
         "--max-concurrent", "1000",
         "--result-cache-path", cache_path],
        env=env, cwd=REPO)
    failures: list[str] = []

    def check(ok: bool, what: str):
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {what}")
        if not ok:
            failures.append(what)

    try:
        for _ in range(100):
            try:
                status, _body = _get_json(base, "/healthz", timeout=2.0)
                if status == 200:
                    break
            except OSError:
                time.sleep(0.2)
        else:
            raise RuntimeError("server never became healthy")

        mu = threading.Lock()
        answered = []
        shed_latencies = []
        bad_500 = []
        poison_submitted = 0

        def one(i: int):
            nonlocal poison_submitted
            if i % 10 == 7:
                source, limit = POISON, 15.0
                with mu:
                    poison_submitted += 1
            elif i % 3 == 0:
                source, limit = COUNT, 10.0
            else:
                source, limit = HELLO, 10.0
            try:
                elapsed, status, body, headers = _post(
                    base, "/api/run",
                    {"source": source, "time_limit": limit,
                     "queue_deadline": 30.0},
                    tenant=f"t{i % 5}")
            except OSError:
                with mu:
                    answered.append(("conn-error", i))
                return
            with mu:
                answered.append((status, i))
                if status == 503:
                    shed_latencies.append(elapsed)
                    if "Retry-After" not in headers:
                        bad_500.append(f"503 without Retry-After: {body}")
                if status == 500 and body.get("cause") not in (
                        "crash", "infra") \
                        and "died mid-run" not in str(body.get("error")):
                    bad_500.append(str(body)[:200])

        print(f"soak: {args.requests} requests, {args.clients} clients, "
              f"chaos seed {args.seed}")
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            list(pool.map(one, range(args.requests)))
        burst_wall = time.perf_counter() - t0

        check(len(answered) == args.requests,
              f"every request answered ({len(answered)}"
              f"/{args.requests}, {burst_wall:.1f}s)")
        statuses = {}
        for status, _ in answered:
            statuses[str(status)] = statuses.get(str(status), 0) + 1
        allowed = {"200", "408", "409", "422", "499", "500", "503"}
        check(set(statuses) <= allowed,
              f"only expected statuses: {statuses}")
        check(not bad_500,
              f"every 500 is the worker-loss shape ({bad_500[:3]})")
        if shed_latencies:
            med = statistics.median(shed_latencies) * 1000
            check(med < 250.0,
                  f"shed answers are fast (median {med:.1f} ms over "
                  f"{len(shed_latencies)} sheds)")

        # Let in-flight accounting settle, then read the stats.
        deadline = time.time() + 10.0
        stats = {}
        while time.time() < deadline:
            _status, stats = _get_json(base, "/api/stats")
            if stats["quotas"]["active_runs"] == 0:
                break
            time.sleep(0.2)
        check(stats["quotas"]["active_runs"] == 0,
              f"no leaked quota slots "
              f"(active_runs={stats['quotas']['active_runs']})")
        kills = stats.get("chaos", {}).get("counts", {}).get(
            "poison_kill", 0)
        check(1 <= kills <= 10 and kills < poison_submitted / 2,
              f"breaker capped the poison program ({kills} executions "
              f"for {poison_submitted} submissions)")
        check(stats["overload"]["breaker"]["trips"] >= 1,
              f"breaker tripped "
              f"({stats['overload']['breaker']['trips']} trips, "
              f"{stats['overload']['breaker']['fast_fails']} fast-fails)")

        # Drain mid-soak: a straggler run in flight, then SIGTERM.
        straggler = threading.Thread(
            target=lambda: _post(base, "/api/run",
                                 {"source": SPIN, "time_limit": 30.0},
                                 tenant="straggler"),
            daemon=True)
        straggler.start()
        time.sleep(0.5)
        server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            code = None
        check(code == 0, f"SIGTERM drain exited 0 (got {code})")
        straggler.join(timeout=10.0)
        check(not straggler.is_alive(),
              "in-flight client released by the drain")
        cache_ok = False
        try:
            with open(os.path.join(REPO, cache_path),
                      encoding="utf-8") as fh:
                cache_ok = isinstance(json.load(fh), list)
        except (OSError, ValueError):
            pass
        check(cache_ok, "result cache persisted intact on drain")

        report = {
            "soak": "serve_chaos",
            "seed": args.seed,
            "requests": args.requests,
            "clients": args.clients,
            "burst_wall_seconds": round(burst_wall, 2),
            "statuses": statuses,
            "shed_median_ms": round(
                statistics.median(shed_latencies) * 1000, 2)
            if shed_latencies else None,
            "poison": {"submitted": poison_submitted,
                       "executed": kills},
            "overload": stats.get("overload"),
            "chaos": stats.get("chaos"),
            "drain_exit_code": code,
            "failures": failures,
        }
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
        if failures:
            print(f"SOAK FAILED: {len(failures)} invariant(s) broken")
            return 1
        print("soak passed: all invariants held")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10.0)
        try:
            os.unlink(os.path.join(REPO, cache_path))
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(main())
