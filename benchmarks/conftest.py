"""Shared infrastructure for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md §3).  Numbers are printed to the terminal *and*
appended to ``benchmarks/results/report.txt`` so a
``pytest benchmarks/ --benchmark-only | tee ...`` run leaves a complete
record even with output capture enabled.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)
    # One report per session: truncate on the first benchmark module.
    report = RESULTS_DIR / "report.txt"
    report.write_text("")


class Reporter:
    """Prints a block of experiment output and archives it."""

    def __init__(self, capsys):
        self._capsys = capsys
        self._path = RESULTS_DIR / "report.txt"

    def emit(self, title: str, lines: list[str]) -> None:
        block = "\n".join([f"== {title} ==", *lines, ""])
        with self._capsys.disabled():
            print("\n" + block)
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(block + "\n")


@pytest.fixture
def report(capsys):
    return Reporter(capsys)


def format_table(headers: list[str], rows: list[list[object]]) -> list[str]:
    """Fixed-width text table (the shape the paper's §IV numbers take)."""
    table = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    out = []
    for i, row in enumerate(table):
        out.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            out.append("  ".join("-" * w for w in widths))
    return out
