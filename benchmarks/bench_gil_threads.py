"""GIL honesty check (DESIGN.md §3, §4).

The paper's §I singles Python out: "in a multi-threaded Python program,
only one thread can actually run at a time".  This reproduction *is* a
Python program, so its real-thread backend cannot show wall-clock speedup —
this benchmark measures that directly, documenting why the speedup
evaluation runs on the virtual-time model instead.  (On the paper's C++
interpreter the same comparison is what produces the 5×.)
"""

import time

import pytest

from repro.api import run_source
from repro.runtime import RuntimeConfig
from conftest import format_table
from workloads import primes_source

LIMIT = 800  # small: this benchmark runs the interpreter for real


def wall_time(backend: str, workers: int) -> float:
    start = time.perf_counter()
    run_source(
        primes_source(LIMIT),
        backend=backend,
        config=RuntimeConfig(num_workers=workers),
    )
    return time.perf_counter() - start


def test_gil_prevents_thread_speedup(benchmark, report):
    def measure():
        return (min(wall_time("sequential", 1) for _ in range(2)),
                min(wall_time("thread", 8) for _ in range(2)))

    sequential, threaded = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = sequential / threaded
    report.emit("GIL honesty: real threads vs sequential (wall clock)", [
        *format_table(
            ["backend", "workers", "seconds"],
            [["sequential", 1, round(sequential, 3)],
             ["thread", 8, round(threaded, 3)]],
        ),
        f"thread-backend 'speedup': {round(ratio, 2)}x",
        "paper's point confirmed: CPython threads give concurrency, not "
        "parallel speedup — hence the virtual-time model for the evaluation.",
    ])
    # 8 threads must NOT deliver anything like 8x; allow generous noise.
    assert ratio < 2.0


def test_thread_backend_timing(benchmark):
    benchmark.pedantic(
        lambda: run_source(primes_source(LIMIT), backend="thread",
                           config=RuntimeConfig(num_workers=8)),
        rounds=3, iterations=1,
    )


def test_sequential_backend_timing(benchmark):
    benchmark.pedantic(
        lambda: run_source(primes_source(LIMIT), backend="sequential"),
        rounds=3, iterations=1,
    )
