"""Figure IV: the IDE.

The figure is a screenshot of the editor (syntax highlighting), console
pane, and run support; the flagship in-progress feature is per-thread
stepping.  This module regenerates each capability headlessly and times the
interactive-path operations an IDE must keep fast (highlight-on-keystroke,
run-to-console, debugger stepping).
"""

import pytest

from repro.ide.debugger import DebugSession
from repro.ide.highlight import Style, highlight
from repro.ide.session import IDESession
from repro.programs import FIGURE_2_PARALLEL_SUM, FIGURE_3_PARALLEL_MAX
from conftest import format_table


def test_ide_capabilities(benchmark, report):
    session = IDESession(FIGURE_3_PARALLEL_MAX)
    benchmark.pedantic(session.highlight_spans, rounds=1, iterations=1)
    spans = session.highlight_spans()
    styled = {s.style for s in spans}
    output = session.run()
    dbg = session.debug()
    first = dbg.threads()
    dbg.continue_all()
    rows = [
        ["syntax highlighting", f"{len(spans)} spans, "
         f"parallel keywords styled: "
         f"{Style.PARALLEL_KEYWORD in styled}"],
        ["console run", f"output {output.strip()!r}"],
        ["debugger", f"paused at line {first[0].line}, "
         f"then ran to completion: {dbg.finished}"],
    ]
    report.emit("Figure IV — IDE capabilities (headless)", [
        *format_table(["capability", "measured"], rows),
        "paper: editor + highlighting + console + run shipping; per-thread "
        "stepping in progress.  Here all four are implemented and tested.",
    ])
    assert Style.PARALLEL_KEYWORD in styled
    assert output.strip() == "96"
    assert dbg.finished and dbg.error is None


def test_highlight_latency(benchmark):
    # Highlighting runs on every keystroke in an editor; it must be cheap.
    benchmark(lambda: highlight(FIGURE_2_PARALLEL_SUM * 10))


def test_run_to_console_latency(benchmark):
    session = IDESession(FIGURE_2_PARALLEL_SUM)
    benchmark.pedantic(session.run, rounds=5, iterations=1)


def test_debugger_step_latency(benchmark):
    """Single-step cost: the interactive operation of the per-thread views."""

    def step_through():
        dbg = DebugSession("def main():\n    x = 0\n" + "    x = x + 1\n" * 20)
        dbg.start()
        tid = dbg.threads()[0].id
        for _ in range(20):
            dbg.step(tid)
        dbg.stop()

    benchmark.pedantic(step_through, rounds=3, iterations=1)
