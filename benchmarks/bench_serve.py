"""Load benchmark for the hosted execution service (``tetra serve``).

Boots a real :class:`~repro.serve.TetraServer` on an ephemeral port and
drives it with concurrent HTTP clients the way a classroom would: most
requests are the *same assignment source* (the duplicate-heavy shape the
execution-dedup layer exists for), a few are per-student variants, and a
sprinkle are broken programs that must be rejected at the front door
without costing a sandbox worker.

The same workload runs **twice** — once with coalescing and the result
cache disabled (the no-dedup baseline: every request pays a sandbox
execution) and once with dedup on — so the report can state the speedup
and prove the execution count collapsed to the number of *unique*
runnable programs, not the number of requests.

Reported per mode: sustained requests/second, p50/p99 end-to-end
latency, the program-cache hit rate, and (dedup mode) sandbox
executions vs unique requests plus the coalesced/cache-hit split.  Run
as a script — ``python benchmarks/bench_serve.py --smoke --json
BENCH_serve_throughput.json`` is the CI invocation; drop ``--smoke``
for the full measurement.
"""

import json
import os
import statistics
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

ASSIGNMENT = (
    "def main():\n"
    "    total = 0\n"
    "    for i in [1 ... 5000]:\n"
    "        total = total + i * i\n"
    "    print(total)\n"
)
EXPECTED_OUTPUT = "41679167500\n"  # sum of squares 1..5000
BROKEN = "def main(:\n"

#: Of every 10 requests: 7 are the shared assignment, 2 are per-client
#: variants (unique sources), 1 is broken (rejected pre-sandbox).
MIX_SHARED, MIX_VARIANT = 7, 2
DUPLICATE_SHARE = MIX_SHARED / 10.0


def _request(base: str, payload: dict, tenant: str):
    req = urllib.request.Request(
        base + "/api/run", data=json.dumps(payload).encode("utf-8"),
        headers={"X-Tetra-Tenant": tenant})
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            body = json.loads(resp.read())
            status = resp.status
    except urllib.error.HTTPError as err:
        body = json.loads(err.read())
        status = err.code
    return time.perf_counter() - t0, status, body


def run_load(total: int, clients: int, workers: int,
             dedup: bool = True) -> dict:
    from repro.api import clear_program_cache
    from repro.serve import ExecutionService, ServeConfig, TetraServer

    clear_program_cache()
    config = ServeConfig(port=0, workers=workers,
                         rate=100_000.0, burst=100_000,
                         max_concurrent=1_000, max_queue=total + clients,
                         coalesce=dedup,
                         result_cache_size=256 if dedup else 0)
    service = ExecutionService(config)
    server = TetraServer(("127.0.0.1", 0), service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    def one(i: int):
        slot = i % 10
        if slot < MIX_SHARED:
            payload, expect = {"source": ASSIGNMENT}, 200
        elif slot < MIX_SHARED + MIX_VARIANT:
            payload = {"source": ASSIGNMENT
                       + f"\ndef variant{i}():\n    print({i})\n"}
            expect = 200
        else:
            payload, expect = {"source": BROKEN}, 422
        elapsed, status, body = _request(base, payload, f"client-{i % 8}")
        assert status == expect, (status, body)
        if status == 200:
            assert body["output"] == EXPECTED_OUTPUT, body
        return elapsed, status

    try:
        # Warm the pool and the caches out of the measured window
        # (shared-source slots only — in dedup mode this primes the
        # result cache exactly like yesterday's class would have).
        for i in range(workers + 1):
            one(i * 10)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            measured = list(pool.map(one, range(total)))
        wall = time.perf_counter() - t0
        stats = service.stats()
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()

    latencies = sorted(ms for ms, _ in measured)
    rejected = sum(1 for _, status in measured if status == 422)
    # Unique runnable programs across warmup + measurement: the one
    # shared assignment plus every per-request variant.
    variants = sum(1 for i in range(total)
                   if MIX_SHARED <= i % 10 < MIX_SHARED + MIX_VARIANT)
    unique_requests = 1 + variants
    executions = stats["dedup"]["executions"]
    if dedup:
        assert executions <= unique_requests, (
            f"dedup mode ran {executions} sandbox executions for only "
            f"{unique_requests} unique runnable requests")
    return {
        "dedup_enabled": dedup,
        "requests": total,
        "clients": clients,
        "pool_workers": workers,
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(total / wall, 2),
        "latency_ms": {
            "p50": round(statistics.median(latencies) * 1000, 2),
            "p99": round(latencies[int(len(latencies) * 0.99) - 1]
                         * 1000, 2),
            "max": round(latencies[-1] * 1000, 2),
        },
        "cache_hit_rate": round(stats["program_cache"]["hit_rate"], 4),
        "compile_rejects": rejected,
        "executions": executions,
        "unique_requests": unique_requests,
        "coalesced": stats["dedup"]["coalesced"],
        "cache_hits": stats["dedup"]["cache_hits"],
        "pool": {k: stats["pool"][k]
                 for k in ("served", "crashed", "recycled")},
    }


def _print_mode(label: str, result: dict) -> None:
    lat = result["latency_ms"]
    print(f"  [{label}]")
    print(f"    throughput: {result['requests_per_second']:8.1f} req/s "
          f"({result['wall_seconds']:.2f}s wall)")
    print(f"    latency:    p50 {lat['p50']:.1f} ms   "
          f"p99 {lat['p99']:.1f} ms   max {lat['max']:.1f} ms")
    print(f"    executions: {result['executions']} sandbox runs for "
          f"{result['requests']} requests "
          f"({result['unique_requests']} unique; "
          f"{result['coalesced']} coalesced, "
          f"{result['cache_hits']} cache hits)")
    print(f"    cache:      {result['cache_hit_rate']:.1%} program-cache "
          f"hit rate   {result['compile_rejects']} compile rejects")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="tetra serve load benchmark: req/s with and without "
                    "execution dedup on a duplicate-heavy workload",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small request count, short run (CI)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the measurements as JSON")
    parser.add_argument("--requests", type=int, default=None,
                        help="override the request count")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--workers", type=int, default=2,
                        help="sandbox pool size (default 2)")
    args = parser.parse_args(argv)

    total = args.requests or (40 if args.smoke else 200)
    cores = os.cpu_count() or 1
    print(f"tetra serve load: {total} requests "
          f"({DUPLICATE_SHARE:.0%} identical), {args.clients} clients, "
          f"{args.workers} sandbox workers, {cores} core(s)")
    baseline = run_load(total, args.clients, args.workers, dedup=False)
    _print_mode("no dedup", baseline)
    deduped = run_load(total, args.clients, args.workers, dedup=True)
    _print_mode("dedup", deduped)
    speedup = (deduped["requests_per_second"]
               / baseline["requests_per_second"]) \
        if baseline["requests_per_second"] else 0.0
    print(f"  dedup speedup: {speedup:.2f}x req/s on the "
          f"duplicate-heavy mix")

    if args.json:
        payload = {
            "benchmark": "serve_throughput",
            "mode": "smoke" if args.smoke else "full",
            "machine_cores": cores,
            "workload": {
                "requests": total,
                "clients": args.clients,
                "pool_workers": args.workers,
                "duplicate_share": DUPLICATE_SHARE,
            },
            "no_dedup": baseline,
            "dedup": deduped,
            "dedup_speedup": round(speedup, 2),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
