"""Load benchmark for the hosted execution service (``tetra serve``).

Boots a real :class:`~repro.serve.TetraServer` on an ephemeral port and
drives it with concurrent HTTP clients the way a classroom would: most
requests are the *same assignment source* (the duplicate-heavy shape the
execution-dedup layer exists for), a few are per-student variants, and a
sprinkle are broken programs that must be rejected at the front door
without costing a sandbox worker.

The same workload runs **twice** — once with coalescing and the result
cache disabled (the no-dedup baseline: every request pays a sandbox
execution) and once with dedup on — so the report can state the speedup
and prove the execution count collapsed to the number of *unique*
runnable programs, not the number of requests.

Reported per mode: sustained requests/second, p50/p99 end-to-end
latency, the program-cache hit rate, and (dedup mode) sandbox
executions vs unique requests plus the coalesced/cache-hit split.

A third **overload** scenario drives the service past its pool capacity
with a bounded queue, a poison program, and seeded serve-layer chaos,
and records the graceful-degradation counters: requests shed (503 +
Retry-After) at admission and in the queue, circuit-breaker trips and
fast-fails, transparent infra retries, and the drain outcome.  Run as a
script — ``python benchmarks/bench_serve.py --smoke --json
BENCH_serve_throughput.json`` is the CI invocation; drop ``--smoke``
for the full measurement.
"""

import json
import os
import statistics
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

ASSIGNMENT = (
    "def main():\n"
    "    total = 0\n"
    "    for i in [1 ... 5000]:\n"
    "        total = total + i * i\n"
    "    print(total)\n"
)
EXPECTED_OUTPUT = "41679167500\n"  # sum of squares 1..5000
BROKEN = "def main(:\n"

#: Of every 10 requests: 7 are the shared assignment, 2 are per-client
#: variants (unique sources), 1 is broken (rejected pre-sandbox).
MIX_SHARED, MIX_VARIANT = 7, 2
DUPLICATE_SHARE = MIX_SHARED / 10.0


def _request(base: str, payload: dict, tenant: str):
    req = urllib.request.Request(
        base + "/api/run", data=json.dumps(payload).encode("utf-8"),
        headers={"X-Tetra-Tenant": tenant})
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            body = json.loads(resp.read())
            status = resp.status
    except urllib.error.HTTPError as err:
        body = json.loads(err.read())
        status = err.code
    return time.perf_counter() - t0, status, body


def run_load(total: int, clients: int, workers: int,
             dedup: bool = True) -> dict:
    from repro.api import clear_program_cache
    from repro.serve import ExecutionService, ServeConfig, TetraServer

    clear_program_cache()
    config = ServeConfig(port=0, workers=workers,
                         rate=100_000.0, burst=100_000,
                         max_concurrent=1_000, max_queue=total + clients,
                         coalesce=dedup,
                         result_cache_size=256 if dedup else 0)
    service = ExecutionService(config)
    server = TetraServer(("127.0.0.1", 0), service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    def one(i: int):
        slot = i % 10
        if slot < MIX_SHARED:
            payload, expect = {"source": ASSIGNMENT}, 200
        elif slot < MIX_SHARED + MIX_VARIANT:
            payload = {"source": ASSIGNMENT
                       + f"\ndef variant{i}():\n    print({i})\n"}
            expect = 200
        else:
            payload, expect = {"source": BROKEN}, 422
        elapsed, status, body = _request(base, payload, f"client-{i % 8}")
        assert status == expect, (status, body)
        if status == 200:
            assert body["output"] == EXPECTED_OUTPUT, body
        return elapsed, status

    try:
        # Warm the pool and the caches out of the measured window
        # (shared-source slots only — in dedup mode this primes the
        # result cache exactly like yesterday's class would have).
        for i in range(workers + 1):
            one(i * 10)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            measured = list(pool.map(one, range(total)))
        wall = time.perf_counter() - t0
        stats = service.stats()
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()

    latencies = sorted(ms for ms, _ in measured)
    rejected = sum(1 for _, status in measured if status == 422)
    # Unique runnable programs across warmup + measurement: the one
    # shared assignment plus every per-request variant.
    variants = sum(1 for i in range(total)
                   if MIX_SHARED <= i % 10 < MIX_SHARED + MIX_VARIANT)
    unique_requests = 1 + variants
    executions = stats["dedup"]["executions"]
    if dedup:
        assert executions <= unique_requests, (
            f"dedup mode ran {executions} sandbox executions for only "
            f"{unique_requests} unique runnable requests")
    return {
        "dedup_enabled": dedup,
        "requests": total,
        "clients": clients,
        "pool_workers": workers,
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(total / wall, 2),
        "latency_ms": {
            "p50": round(statistics.median(latencies) * 1000, 2),
            "p99": round(latencies[int(len(latencies) * 0.99) - 1]
                         * 1000, 2),
            "max": round(latencies[-1] * 1000, 2),
        },
        "cache_hit_rate": round(stats["program_cache"]["hit_rate"], 4),
        "compile_rejects": rejected,
        "executions": executions,
        "unique_requests": unique_requests,
        "coalesced": stats["dedup"]["coalesced"],
        "cache_hits": stats["dedup"]["cache_hits"],
        "pool": {k: stats["pool"][k]
                 for k in ("served", "crashed", "recycled")},
    }


def run_overload(total: int, clients: int, workers: int,
                 seed: int = 1234) -> dict:
    """Drive the service past capacity under seeded chaos and report the
    graceful-degradation counters (in-process: the numbers measure the
    service, not the HTTP stack)."""
    from repro.api import clear_program_cache
    from repro.serve import (
        ExecutionService,
        ServeConfig,
        ServeError,
        ServeFaultPlan,
    )
    from repro.serve.chaos import POISON_MARKER

    clear_program_cache()
    poison = (f"def main():\n    # {POISON_MARKER}\n"
              "    x = 0\n    while true:\n        x = x + 1\n")
    hello = 'def main():\n    print("hello")\n'
    plan = ServeFaultPlan(seed, kill_pre_dispatch_prob=0.03,
                          kill_mid_run_prob=0.02, pipe_delay_prob=0.05,
                          sever_pipe_prob=0.01, drop_client_prob=0.0,
                          compile_stall_prob=0.05)
    config = ServeConfig(port=0, workers=workers, rate=100_000.0,
                         burst=100_000, max_concurrent=1_000,
                         max_queue=8, coalesce=False,
                         result_cache_size=0, breaker_threshold=3,
                         breaker_backoff=600.0, infra_retries=2)
    service = ExecutionService(config, chaos=plan)
    statuses: dict[int, int] = {}
    shed_latencies: list[float] = []
    poison_submitted = 0
    mu = threading.Lock()

    def one(i: int):
        nonlocal poison_submitted
        if i % 10 == 7:
            source = poison
            with mu:
                poison_submitted += 1
        elif i % 3 == 0:
            source = ASSIGNMENT
        else:
            source = hello
        t0 = time.perf_counter()
        try:
            result = service.run(
                {"source": source, "time_limit": 15.0,
                 "queue_deadline": 10.0},
                tenant=f"client-{i % 8}", timeout=60.0)
            status = result.get("http_status") or 200
            if result.get("status") == "shed":
                with mu:
                    shed_latencies.append(time.perf_counter() - t0)
        except ServeError as err:
            status = err.status
            with mu:
                shed_latencies.append(time.perf_counter() - t0)
        with mu:
            statuses[status] = statuses.get(status, 0) + 1

    try:
        # Prime the breaker out of the measured window: the poison
        # program crashes its worker `threshold` times serially, so the
        # burst below meets an *open* breaker and its poison
        # submissions fail fast instead of each costing a respawn.
        for _ in range(config.breaker_threshold):
            service.run({"source": poison, "time_limit": 15.0},
                        timeout=60.0)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(one, range(total)))
        wall = time.perf_counter() - t0
        stats = service.stats()
        # Drain mid-traffic: one straggler gets cancelled at deadline.
        spin = service.submit(
            {"source": "def main():\n    x = 0\n"
                       "    while true:\n        x = x + 1\n",
             "time_limit": 30.0})
        drain_t0 = time.perf_counter()
        drained = service.begin_drain(grace=1.0)
        clean = drained.wait(30.0)
        drain_wall = time.perf_counter() - drain_t0
        spin.wait(5.0)
    finally:
        service.shutdown()

    overload = stats["overload"]
    return {
        "requests": total,
        "clients": clients,
        "pool_workers": workers,
        "chaos_seed": seed,
        "wall_seconds": round(wall, 4),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "shed": {
            "at_admission": overload["admission"]["shed_queue_full"]
            + overload["admission"]["shed_deadline"],
            "in_queue": overload["shed_expired"],
            "median_ms": round(
                statistics.median(shed_latencies) * 1000, 2)
            if shed_latencies else None,
        },
        "breaker": {
            "trips": overload["breaker"]["trips"],
            "fast_fails": overload["breaker"]["fast_fails"],
            "poison_submissions": poison_submitted,
            "poison_executions": stats.get("chaos", {}).get(
                "counts", {}).get("poison_kill", 0),
        },
        "infra_retried": overload["infra_retried"],
        "chaos_counts": stats.get("chaos", {}).get("counts", {}),
        "drain": {
            "clean": bool(clean),
            "wall_seconds": round(drain_wall, 4),
            "cancelled": service.drain_cancelled,
        },
    }


def _print_overload(result: dict) -> None:
    shed = result["shed"]
    breaker = result["breaker"]
    print("  [overload]")
    print(f"    statuses:   {result['statuses']}")
    med = shed["median_ms"]
    print(f"    shed:       {shed['at_admission']} at admission, "
          f"{shed['in_queue']} in queue"
          + (f", median {med:.1f} ms" if med is not None else ""))
    print(f"    breaker:    {breaker['trips']} trips, "
          f"{breaker['fast_fails']} fast-fails — poison ran "
          f"{breaker['poison_executions']}x for "
          f"{breaker['poison_submissions']} submissions")
    print(f"    retries:    {result['infra_retried']} transparent "
          f"infra redispatches")
    drain = result["drain"]
    print(f"    drain:      clean={drain['clean']} in "
          f"{drain['wall_seconds']:.2f}s "
          f"({drain['cancelled']} cancelled at deadline)")


def _print_mode(label: str, result: dict) -> None:
    lat = result["latency_ms"]
    print(f"  [{label}]")
    print(f"    throughput: {result['requests_per_second']:8.1f} req/s "
          f"({result['wall_seconds']:.2f}s wall)")
    print(f"    latency:    p50 {lat['p50']:.1f} ms   "
          f"p99 {lat['p99']:.1f} ms   max {lat['max']:.1f} ms")
    print(f"    executions: {result['executions']} sandbox runs for "
          f"{result['requests']} requests "
          f"({result['unique_requests']} unique; "
          f"{result['coalesced']} coalesced, "
          f"{result['cache_hits']} cache hits)")
    print(f"    cache:      {result['cache_hit_rate']:.1%} program-cache "
          f"hit rate   {result['compile_rejects']} compile rejects")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="tetra serve load benchmark: req/s with and without "
                    "execution dedup on a duplicate-heavy workload",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small request count, short run (CI)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the measurements as JSON")
    parser.add_argument("--requests", type=int, default=None,
                        help="override the request count")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--workers", type=int, default=2,
                        help="sandbox pool size (default 2)")
    args = parser.parse_args(argv)

    total = args.requests or (40 if args.smoke else 200)
    cores = os.cpu_count() or 1
    print(f"tetra serve load: {total} requests "
          f"({DUPLICATE_SHARE:.0%} identical), {args.clients} clients, "
          f"{args.workers} sandbox workers, {cores} core(s)")
    baseline = run_load(total, args.clients, args.workers, dedup=False)
    _print_mode("no dedup", baseline)
    deduped = run_load(total, args.clients, args.workers, dedup=True)
    _print_mode("dedup", deduped)
    speedup = (deduped["requests_per_second"]
               / baseline["requests_per_second"]) \
        if baseline["requests_per_second"] else 0.0
    print(f"  dedup speedup: {speedup:.2f}x req/s on the "
          f"duplicate-heavy mix")
    overload = run_overload(total, max(args.clients, 12), args.workers)
    _print_overload(overload)

    if args.json:
        payload = {
            "benchmark": "serve_throughput",
            "mode": "smoke" if args.smoke else "full",
            "machine_cores": cores,
            "workload": {
                "requests": total,
                "clients": args.clients,
                "pool_workers": args.workers,
                "duplicate_share": DUPLICATE_SHARE,
            },
            "no_dedup": baseline,
            "dedup": deduped,
            "dedup_speedup": round(speedup, 2),
            "overload": overload,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
