"""Ablation: sensitivity of 8-core speedup to parallelism overheads.

The paper attributes its efficiency loss to "the sharing of data structures
amongst interpreter threads".  The cost model makes that explanation
quantitative: sweep the spawn/join/lock overhead scale and the sharing tax
and watch the 8-core speedup move through (and past) the paper's ~5×.
"""

import pytest

from dataclasses import replace

from repro.runtime.cost import CostModel
from conftest import format_table
from workloads import primes_source, record_trace

LIMIT = 1000


def speedup_at_8(cost_model: CostModel) -> float:
    backend = record_trace(primes_source(LIMIT), cores=8,
                           cost_model=cost_model)
    curve = backend.speedups([8])
    return curve[8].speedup_against(curve[1])


def test_overhead_scale_sweep(benchmark, report):
    benchmark.pedantic(lambda: speedup_at_8(CostModel().scaled(1.0)), rounds=1, iterations=1)
    rows = []
    speedups = []
    for factor in (0.0, 0.5, 1.0, 2.0, 4.0):
        model = CostModel().scaled(factor)
        s = speedup_at_8(model)
        speedups.append(s)
        rows.append([f"{factor}x", round(s, 2)])
    report.emit("Ablation: spawn/join/lock overhead scale -> 8-core speedup", [
        *format_table(["overhead scale", "speedup @8"], rows),
        "higher thread-management costs eat the parallel gain; the default "
        "(1x) calibration lands near the paper's ~5x.",
    ])
    # More overhead can never help.
    assert all(a >= b - 1e-6 for a, b in zip(speedups, speedups[1:]))


def test_sharing_tax_sweep(benchmark, report):
    benchmark.pedantic(lambda: speedup_at_8(CostModel()), rounds=1, iterations=1)
    rows = []
    speedups = []
    for tax in (0, 2, 4, 8, 16):
        model = replace(CostModel(), sharing_tax_percent=tax)
        s = speedup_at_8(model)
        speedups.append(s)
        rows.append([f"{tax}%", round(s, 2)])
    report.emit("Ablation: interpreter sharing tax -> 8-core speedup", [
        *format_table(["sharing tax / extra core", "speedup @8"], rows),
        'models the paper\'s "sharing of data structures amongst '
        'interpreter threads" as per-core work inflation.',
    ])
    assert all(a >= b - 1e-6 for a, b in zip(speedups, speedups[1:]))


def test_sweep_cost(benchmark):
    benchmark.pedantic(lambda: speedup_at_8(CostModel()), rounds=3,
                       iterations=1)
