"""Ablation: execution-strategy overhead (interpreted vs compiled).

The paper's future-work native compiler exists "so Tetra programs can be
run more efficiently than with the interpreter"; this benchmark measures
how much our Tetra→Python compiler actually buys over the tree-walking
interpreter, with hand-written Python as the floor.
"""

import time
import textwrap

import pytest

from repro.api import run_source
from repro.compiler import compile_to_python, load_compiled
from repro.stdlib.io import CapturingIO
from conftest import format_table

FIB_N = 18

FIB_TETRA = textwrap.dedent(f"""
    def fib(n int) int:
        if n < 2:
            return n
        return fib(n - 1) + fib(n - 2)

    def main():
        print(fib({FIB_N}))
""")


def fib_python(n: int) -> int:
    if n < 2:
        return n
    return fib_python(n - 1) + fib_python(n - 2)


EXPECTED = str(fib_python(FIB_N))


@pytest.fixture(scope="module")
def compiled_module():
    return load_compiled(compile_to_python(FIB_TETRA))


def run_interpreted():
    return run_source(FIB_TETRA, backend="sequential").output_lines()


def run_compiled_module(module):
    io = CapturingIO()
    module["run"](io=io)
    return io.lines()


def test_all_strategies_agree(benchmark, compiled_module):
    benchmark.pedantic(run_interpreted, rounds=1, iterations=1)
    assert run_interpreted() == [EXPECTED]
    assert run_compiled_module(compiled_module) == [EXPECTED]


def test_interpreter_overhead_table(benchmark, compiled_module, report):
    def timed(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    benchmark.pedantic(run_interpreted, rounds=1, iterations=1)
    interp = timed(run_interpreted)
    compiled = timed(lambda: run_compiled_module(compiled_module))
    native = timed(lambda: fib_python(FIB_N))
    rows = [
        ["tree-walking interpreter", round(interp * 1000, 1),
         round(interp / native, 1)],
        ["compiled to Python", round(compiled * 1000, 1),
         round(compiled / native, 1)],
        ["hand-written Python", round(native * 1000, 1), 1.0],
    ]
    report.emit(f"Ablation: execution strategy on fib({FIB_N})", [
        *format_table(["strategy", "ms (best of 3)", "vs native"], rows),
        "the compiler removes AST-dispatch overhead, as the paper's "
        "future-work section anticipates for its native compiler.",
    ])
    assert compiled < interp  # compilation must actually help


def test_interpreted_fib(benchmark):
    benchmark.pedantic(run_interpreted, rounds=3, iterations=1)


def test_compiled_fib(benchmark, compiled_module):
    benchmark.pedantic(lambda: run_compiled_module(compiled_module),
                       rounds=3, iterations=1)
