"""Ablation: execution-strategy overhead (interpreted vs compiled).

The paper's future-work native compiler exists "so Tetra programs can be
run more efficiently than with the interpreter"; this benchmark measures
the whole ladder on fib(18):

* the seed **tree-walking interpreter** (``fast=False``, per-node dispatch),
* the **closure fast path** (``repro.interp.compile``, the default),
* the Tetra→Python **compiler**,
* **hand-written Python** as the floor.

Runs as a pytest-benchmark module (the repo's usual harness) and as a
script — ``python benchmarks/bench_interp_overhead.py --smoke --json
BENCH_interp_overhead.json`` — which is what CI calls to track the perf
trajectory from PR to PR.
"""

import json
import threading
import time
import textwrap

from repro.api import run_source
from repro.compiler import compile_to_python, load_compiled
from repro.stdlib.io import CapturingIO

FIB_N = 18

FIB_TETRA = textwrap.dedent(f"""
    def fib(n int) int:
        if n < 2:
            return n
        return fib(n - 1) + fib(n - 2)

    def main():
        print(fib({FIB_N}))
""")

#: The fast path must beat the seed walker at least this much on fib
#: (acceptance criterion of the precompilation work; measured ~2x).
MIN_FAST_SPEEDUP = 1.8


def fib_python(n: int) -> int:
    if n < 2:
        return n
    return fib_python(n - 1) + fib_python(n - 2)


EXPECTED = str(fib_python(FIB_N))


def run_walker():
    """The seed tree-walking interpreter, no program cache."""
    return run_source(FIB_TETRA, backend="sequential",
                      fast=False, cache=False).output_lines()


def run_fast_path():
    """The closure fast path through the (warm) program cache — the
    default execution pipeline."""
    return run_source(FIB_TETRA, backend="sequential").output_lines()


def run_compiled_module(module):
    io = CapturingIO()
    module["run"](io=io)
    return io.lines()


def _timed_once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure(rounds=5):
    """Best-of-``rounds`` wall time per strategy, in seconds.

    Two methodology notes, both learned the hard way:

    * Rounds are **interleaved** (walker, fast path, compiled, python,
      then again) rather than timed back-to-back per strategy: shared CI
      machines drift in speed over a benchmark's lifetime, and
      interleaving spreads that drift evenly across strategies so the
      walker/fast-path *ratio* stays honest even when absolute times
      wobble.
    * The timing loop runs on a **fresh thread**.  CPython 3.11+ grows
      the frame stack in 16 KiB chunks and frees a chunk the moment
      recursion pops back across its base, so a deeply recursive workload
      like fib can pay a chunk allocation per call — *if* the caller's
      stack depth happens to put the hot part of the call tree on a chunk
      edge.  Measured from the main thread, fib wall time swung ±40%
      depending on whether pytest or a script invoked it.  A new thread
      starts a new frame stack at a fixed depth, which makes the numbers
      reproducible across harnesses.
    """
    module = load_compiled(compile_to_python(FIB_TETRA))
    assert run_walker() == [EXPECTED]
    assert run_fast_path() == [EXPECTED]
    assert run_compiled_module(module) == [EXPECTED]
    strategies = {
        "interpreter": run_walker,
        "fast_path": run_fast_path,
        "compiled": lambda: run_compiled_module(module),
        "python": lambda: fib_python(FIB_N),
    }

    best = {name: float("inf") for name in strategies}

    def loop():
        for _ in range(rounds):
            for name, fn in strategies.items():
                best[name] = min(best[name], _timed_once(fn))

    timer = threading.Thread(target=loop, name="bench-timer")
    timer.start()
    timer.join()
    return best


# ----------------------------------------------------------------------
# pytest harness
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    from conftest import format_table

    @pytest.fixture(scope="module")
    def compiled_module():
        return load_compiled(compile_to_python(FIB_TETRA))

    def test_all_strategies_agree(benchmark, compiled_module):
        benchmark.pedantic(run_fast_path, rounds=1, iterations=1)
        assert run_walker() == [EXPECTED]
        assert run_fast_path() == [EXPECTED]
        assert run_compiled_module(compiled_module) == [EXPECTED]

    def test_fast_path_agrees_on_all_backends(benchmark):
        benchmark.pedantic(run_fast_path, rounds=1, iterations=1)
        for backend in ("thread", "sequential", "coop", "sim"):
            walker = run_source(FIB_TETRA, backend=backend,
                                fast=False, cache=False).output
            fast = run_source(FIB_TETRA, backend=backend).output
            assert walker == fast == EXPECTED + "\n"

    def test_interpreter_overhead_table(benchmark, report):
        benchmark.pedantic(run_fast_path, rounds=1, iterations=1)
        times = measure(rounds=5)
        native = times["python"]
        rows = [
            ["tree-walking interpreter",
             round(times["interpreter"] * 1000, 1),
             round(times["interpreter"] / native, 1)],
            ["closure fast path",
             round(times["fast_path"] * 1000, 1),
             round(times["fast_path"] / native, 1)],
            ["compiled to Python",
             round(times["compiled"] * 1000, 1),
             round(times["compiled"] / native, 1)],
            ["hand-written Python",
             round(times["python"] * 1000, 1), 1.0],
        ]
        speedup = times["interpreter"] / times["fast_path"]
        report.emit(f"Ablation: execution strategy on fib({FIB_N})", [
            *format_table(["strategy", "ms (best of 5)", "vs native"], rows),
            f"closure precompilation is {speedup:.2f}x the tree walker; "
            "the compiler removes the remaining interpretation overhead, "
            "as the paper's future-work section anticipates.",
        ])
        assert times["compiled"] < times["interpreter"]
        assert speedup >= MIN_FAST_SPEEDUP

    def test_interpreted_fib(benchmark):
        benchmark.pedantic(run_walker, rounds=3, iterations=1)

    def test_fast_path_fib(benchmark):
        benchmark.pedantic(run_fast_path, rounds=3, iterations=1)

    def test_compiled_fib(benchmark, compiled_module):
        benchmark.pedantic(lambda: run_compiled_module(compiled_module),
                           rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Script / CI smoke mode
# ----------------------------------------------------------------------
def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="fib wall-time for interpreter, fast path, compiled, "
                    "and hand-written Python",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fewer timing rounds per strategy (CI mode)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write results as JSON (e.g. "
                             "BENCH_interp_overhead.json)")
    args = parser.parse_args(argv)

    times = measure(rounds=3 if args.smoke else 7)
    speedup = times["interpreter"] / times["fast_path"]
    payload = {
        "benchmark": "interp_overhead",
        "workload": f"fib({FIB_N})",
        "mode": "smoke" if args.smoke else "full",
        "seconds": {k: round(v, 6) for k, v in times.items()},
        "fast_path_speedup": round(speedup, 3),
        "min_fast_speedup": MIN_FAST_SPEEDUP,
    }
    for name in ("interpreter", "fast_path", "compiled", "python"):
        print(f"{name:>12}: {times[name] * 1000:8.2f} ms")
    print(f"fast path is {speedup:.2f}x the tree walker "
          f"(floor: {MIN_FAST_SPEEDUP}x)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if speedup < MIN_FAST_SPEEDUP and not args.smoke:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
