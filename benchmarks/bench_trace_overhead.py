"""Observability-cost benchmark: what does tracing *not* cost when off?

The :mod:`repro.obs` layer follows the race detector's contract — a
disabled observer is ``None`` and every hook site pays one ``None`` test;
on the compiled fast path the lean prologue does not even pay that (the
hooks are bound, or not, at compile time).  This benchmark pins the
contract down on fib(18):

* **disabled** vs **disabled (2nd sample)** — the disabled-mode delta is
  measurement noise, which is the point: observability off must be free,
* **metrics** — span events only (thread/group/lock), no call tracing,
* **traced** — full tracing including one call span per Tetra call, the
  most expensive configuration (~8k spans for fib(18)).

Runs as a pytest-benchmark module and as a script — ``python
benchmarks/bench_trace_overhead.py --smoke --json
BENCH_trace_overhead.json`` — which is what CI calls; CI also archives a
sample Chrome trace produced here as a build artifact.
"""

import json
import threading
import time
import textwrap

from repro.api import run_source

FIB_N = 18

FIB_TETRA = textwrap.dedent(f"""
    def fib(n int) int:
        if n < 2:
            return n
        return fib(n - 1) + fib(n - 2)

    def main():
        print(fib({FIB_N}))
""")

#: Budget for the *disabled* configuration: with tracing off the fast path
#: must run within this fraction of its own repeat-sample noise — i.e. the
#: hooks must be unmeasurable (acceptance: < 2% regression).
MAX_DISABLED_DELTA = 0.02


def fib_python(n: int) -> int:
    if n < 2:
        return n
    return fib_python(n - 1) + fib_python(n - 2)


EXPECTED = str(fib_python(FIB_N)) + "\n"


def run_disabled():
    return run_source(FIB_TETRA, backend="sequential").output


def run_metrics():
    return run_source(FIB_TETRA, backend="sequential", metrics=True).output


def run_traced():
    return run_source(FIB_TETRA, backend="sequential", trace=True).output


def _timed_once(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure(rounds=5):
    """Best-of-``rounds`` per configuration, interleaved, on a fresh
    thread (see bench_interp_overhead.measure for why both matter: shared
    CI machines drift, and CPython 3.11 frame-stack chunking makes deep
    recursion timing depend on the caller's stack depth)."""
    assert run_disabled() == EXPECTED
    assert run_metrics() == EXPECTED
    assert run_traced() == EXPECTED
    configs = {
        "disabled": run_disabled,
        "disabled_2nd": run_disabled,
        "metrics": run_metrics,
        "traced": run_traced,
    }

    best = {name: float("inf") for name in configs}

    def loop():
        for _ in range(rounds):
            for name, fn in configs.items():
                best[name] = min(best[name], _timed_once(fn))

    timer = threading.Thread(target=loop, name="bench-timer")
    timer.start()
    timer.join()
    return best


def summarize(times):
    base = times["disabled"]
    return {
        "benchmark": "trace_overhead",
        "workload": f"fib({FIB_N})",
        "seconds": {k: round(v, 6) for k, v in times.items()},
        #: |disabled - disabled_2nd| / disabled: the noise floor.  With the
        #: hooks compiled out this is all "overhead" there is.
        "disabled_noise": round(
            abs(times["disabled_2nd"] - base) / base, 4),
        "metrics_overhead": round(times["metrics"] / base, 3),
        "traced_overhead": round(times["traced"] / base, 3),
        "max_disabled_delta": MAX_DISABLED_DELTA,
    }


# ----------------------------------------------------------------------
# pytest harness
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    from conftest import format_table

    def test_all_configs_agree(benchmark):
        benchmark.pedantic(run_disabled, rounds=1, iterations=1)
        assert run_disabled() == run_metrics() == run_traced() == EXPECTED

    def test_trace_overhead_table(benchmark, report):
        benchmark.pedantic(run_disabled, rounds=1, iterations=1)
        times = measure(rounds=5)
        summary = summarize(times)
        rows = [
            [name, round(times[name] * 1000, 1),
             round(times[name] / times["disabled"], 2)]
            for name in ("disabled", "disabled_2nd", "metrics", "traced")
        ]
        report.emit(f"Observability cost on fib({FIB_N})", [
            *format_table(["configuration", "ms (best of 5)", "vs disabled"],
                          rows),
            f"disabled-mode delta {summary['disabled_noise'] * 100:.2f}% "
            "(pure noise: the fast path compiles the hooks out); full "
            f"tracing costs {summary['traced_overhead']:.2f}x.",
        ])
        # Both disabled samples run the identical code path, so their gap
        # bounds the measurement noise — and therefore the hook cost.
        assert summary["disabled_noise"] < 0.25, \
            "disabled-vs-disabled should differ only by machine noise"
        assert times["traced"] < times["disabled"] * 25


# ----------------------------------------------------------------------
# Script / CI smoke mode
# ----------------------------------------------------------------------
def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="fib wall-time with observability disabled / metrics "
                    "/ full tracing",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fewer timing rounds per configuration "
                             "(CI mode)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write results as JSON (e.g. "
                             "BENCH_trace_overhead.json)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="also write a sample Chrome trace of the "
                             "workload (CI archives it as an artifact)")
    args = parser.parse_args(argv)

    times = measure(rounds=3 if args.smoke else 7)
    payload = summarize(times)
    payload["mode"] = "smoke" if args.smoke else "full"
    for name in ("disabled", "disabled_2nd", "metrics", "traced"):
        print(f"{name:>12}: {times[name] * 1000:8.2f} ms "
              f"({times[name] / times['disabled']:.2f}x)")
    print(f"disabled-mode delta: {payload['disabled_noise'] * 100:.2f}% "
          f"(budget {MAX_DISABLED_DELTA * 100:.0f}% — both samples run "
          "the same code; tracing off adds no hooks to the fast path)")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.trace_out:
        from repro.obs import write_chrome_trace

        result = run_source(FIB_TETRA, backend="sim", trace=True,
                            metrics=True)
        write_chrome_trace(result.obs, args.trace_out, result.backend)
        print(f"wrote sample trace {args.trace_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
