"""§IV evaluation, primes workload: "one which calculates the first million
primes ... achieves approximately 5X speedup when run on 8 cores which is a
62.5% efficiency rate."

Regenerated here on the virtual-time machine model (DESIGN.md §2/§4): the
same Tetra program runs through the same interpreter; the recorded task
graph is scheduled on 1/2/4/8 model cores and speedup/efficiency reported
against the 1-core run.  Problem size is scaled down (see
benchmarks/workloads.py); the shape — near-linear at 2 cores, ≈5× at 8,
efficiency around 60% — is the reproduced claim.
"""

import pytest

from repro.programs import PRIME_COUNTS
from conftest import format_table
from workloads import (
    CORE_COUNTS,
    PRIMES_LIMIT,
    primes_source,
    record_trace,
    speedup_rows,
)


@pytest.fixture(scope="module")
def primes_backend():
    return record_trace(primes_source(), cores=8)


def test_primes_output_is_correct(benchmark, primes_backend):
    # 1500 is not in the PRIME_COUNTS table; verify against a local sieve.
    limit = PRIMES_LIMIT
    sieve = bytearray([1]) * (limit + 1)
    sieve[0:2] = b"\x00\x00"
    for p in range(2, int(limit ** 0.5) + 1):
        if sieve[p]:
            sieve[p * p:: p] = b"\x00" * len(sieve[p * p:: p])
    expected = sum(sieve)
    # The recorder was already run by the fixture; re-run quickly for output.
    from repro.api import run_source

    result = benchmark.pedantic(
        lambda: run_source(primes_source(), backend="sequential"),
        rounds=1, iterations=1,
    )
    assert result.output_lines() == [str(expected)]


def test_primes_speedup_table(benchmark, primes_backend, report):
    rows = benchmark(lambda: speedup_rows(primes_backend))
    table = format_table(
        ["cores", "virtual time", "speedup", "efficiency %"],
        [list(r) for r in rows],
    )
    by_cores = {r[0]: r for r in rows}
    s8, e8 = by_cores[8][2], by_cores[8][3]
    report.emit("§IV primes speedup (paper: ~5x on 8 cores, 62.5% efficiency)", [
        *table,
        f"paper:    8 cores -> ~5.0x speedup, 62.5% efficiency",
        f"measured: 8 cores -> {s8}x speedup, {e8}% efficiency",
        f"workload: primes up to {PRIMES_LIMIT} "
        "(scaled from 'first million primes'; see EXPERIMENTS.md)",
    ])
    # Shape assertions: monotone scaling, ~5x at 8 cores, efficiency drop.
    speedups = [r[2] for r in rows]
    assert speedups == sorted(speedups)
    assert 3.5 < s8 < 6.5
    assert 45.0 < e8 < 80.0


def test_primes_scheduling_cost(benchmark, primes_backend):
    """Time the machine-model scheduling itself (not the workload)."""
    benchmark(lambda: primes_backend.schedule(8))


def test_primes_trace_shape(benchmark, primes_backend, report):
    trace = primes_backend.trace
    benchmark(trace.critical_path)
    report.emit("primes trace statistics", [
        f"tasks: {trace.task_count()} (1 main + 8 parallel-for workers)",
        f"total work: {trace.subtree_work()} units",
        f"critical path: {trace.critical_path()} units",
        f"max parallelism: {trace.max_parallelism()}",
    ])
    assert trace.task_count() == 9
    assert trace.max_parallelism() == 8
