"""§IV evaluation, primes workload: "one which calculates the first million
primes ... achieves approximately 5X speedup when run on 8 cores which is a
62.5% efficiency rate."

Regenerated here two ways:

* On the virtual-time machine model (DESIGN.md §2/§4, the pytest half of
  this module): the same Tetra program runs through the same interpreter;
  the recorded task graph is scheduled on 1/2/4/8 model cores and
  speedup/efficiency reported against the 1-core run.  Problem size is
  scaled down (see benchmarks/workloads.py); the shape — near-linear at 2
  cores, ≈5× at 8, efficiency around 60% — is the reproduced claim.
* On **real hardware** via the process-parallel backend (the script half):
  ``python benchmarks/bench_speedup_primes.py --smoke --json
  BENCH_parallel_speedup.json`` times the primes program sequential vs
  ``--backend proc`` at 2 and 4 workers in *wall-clock seconds* — the
  paper's actual experiment, which the GIL denies to the thread backend.
  The JSON records the machine's core count alongside the speedups: the
  ≥3× target at 4 workers is only reachable with ≥4 real cores.
"""

import pytest

from repro.programs import PRIME_COUNTS
from conftest import format_table
from workloads import (
    CORE_COUNTS,
    PRIMES_LIMIT,
    primes_source,
    record_trace,
    speedup_rows,
)


@pytest.fixture(scope="module")
def primes_backend():
    return record_trace(primes_source(), cores=8)


def test_primes_output_is_correct(benchmark, primes_backend):
    # 1500 is not in the PRIME_COUNTS table; verify against a local sieve.
    limit = PRIMES_LIMIT
    sieve = bytearray([1]) * (limit + 1)
    sieve[0:2] = b"\x00\x00"
    for p in range(2, int(limit ** 0.5) + 1):
        if sieve[p]:
            sieve[p * p:: p] = b"\x00" * len(sieve[p * p:: p])
    expected = sum(sieve)
    # The recorder was already run by the fixture; re-run quickly for output.
    from repro.api import run_source

    result = benchmark.pedantic(
        lambda: run_source(primes_source(), backend="sequential"),
        rounds=1, iterations=1,
    )
    assert result.output_lines() == [str(expected)]


def test_primes_speedup_table(benchmark, primes_backend, report):
    rows = benchmark(lambda: speedup_rows(primes_backend))
    table = format_table(
        ["cores", "virtual time", "speedup", "efficiency %"],
        [list(r) for r in rows],
    )
    by_cores = {r[0]: r for r in rows}
    s8, e8 = by_cores[8][2], by_cores[8][3]
    report.emit("§IV primes speedup (paper: ~5x on 8 cores, 62.5% efficiency)", [
        *table,
        f"paper:    8 cores -> ~5.0x speedup, 62.5% efficiency",
        f"measured: 8 cores -> {s8}x speedup, {e8}% efficiency",
        f"workload: primes up to {PRIMES_LIMIT} "
        "(scaled from 'first million primes'; see EXPERIMENTS.md)",
    ])
    # Shape assertions: monotone scaling, ~5x at 8 cores, efficiency drop.
    speedups = [r[2] for r in rows]
    assert speedups == sorted(speedups)
    assert 3.5 < s8 < 6.5
    assert 45.0 < e8 < 80.0


def test_primes_scheduling_cost(benchmark, primes_backend):
    """Time the machine-model scheduling itself (not the workload)."""
    benchmark(lambda: primes_backend.schedule(8))


def test_primes_trace_shape(benchmark, primes_backend, report):
    trace = primes_backend.trace
    benchmark(trace.critical_path)
    report.emit("primes trace statistics", [
        f"tasks: {trace.task_count()} (1 main + 8 parallel-for workers)",
        f"total work: {trace.subtree_work()} units",
        f"critical path: {trace.critical_path()} units",
        f"max parallelism: {trace.max_parallelism()}",
    ])
    assert trace.task_count() == 9
    assert trace.max_parallelism() == 8


# ----------------------------------------------------------------------
# Standalone mode: real multicore wall-clock speedup via the proc backend
# ----------------------------------------------------------------------
#: Wall-clock speedup the proc backend must reach at 4 workers on a
#: machine with >= 4 cores (the PR's acceptance target; the paper reports
#: ~5x at 8 cores for the same workload).
MIN_PROC_SPEEDUP_4W = 3.0

#: Problem sizes chosen so pool startup + serialization is a few percent
#: of the run (~0.5 s sequential for the full size on one core).
PROC_LIMIT_FULL = 30_000
PROC_LIMIT_SMOKE = 10_000


def _time_run(source, backend, jobs, repeats):
    """Best-of-N wall-clock seconds (and the output, for verification)."""
    import time as _time

    from repro.api import run_source
    from repro.runtime import RuntimeConfig

    best = None
    output = None
    for _ in range(repeats):
        config = RuntimeConfig(num_workers=jobs) if jobs else None
        t0 = _time.perf_counter()
        result = run_source(source, backend=backend, config=config)
        elapsed = _time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
        output = result.output
    return best, output


def main(argv=None):
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(
        description="real-hardware primes speedup: sequential vs proc",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workload, single repetition (CI)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the measurements as JSON")
    parser.add_argument("--jobs", default="2,4",
                        help="comma list of proc worker counts (default 2,4)")
    args = parser.parse_args(argv)

    limit = PROC_LIMIT_SMOKE if args.smoke else PROC_LIMIT_FULL
    repeats = 1 if args.smoke else 3
    job_counts = [int(j) for j in args.jobs.split(",") if j.strip()]
    cores = os.cpu_count() or 1
    source = primes_source(limit)

    seq_s, seq_out = _time_run(source, "sequential", None, repeats)
    print(f"primes up to {limit} on {cores} core(s)")
    print(f"  sequential: {seq_s * 1000:8.1f} ms")
    runs = {}
    for jobs in job_counts:
        proc_s, proc_out = _time_run(source, "proc", jobs, repeats)
        assert proc_out == seq_out, "proc output diverged from sequential"
        speedup = seq_s / proc_s if proc_s > 0 else 0.0
        runs[jobs] = {"seconds": round(proc_s, 6),
                      "speedup": round(speedup, 3)}
        print(f"  proc -j{jobs}:   {proc_s * 1000:8.1f} ms "
              f"({speedup:.2f}x vs sequential)")

    top_jobs = max(job_counts)
    target_applies = cores >= top_jobs
    meets = runs[top_jobs]["speedup"] >= MIN_PROC_SPEEDUP_4W
    print(f"target: >= {MIN_PROC_SPEEDUP_4W}x at {top_jobs} workers -> "
          + ("met" if meets else
         f"not met ({'only ' + str(cores) + ' core(s) available' if not target_applies else 'investigate'})"))

    if args.json:
        payload = {
            "benchmark": "parallel_speedup",
            "workload": f"primes up to {limit}",
            "mode": "smoke" if args.smoke else "full",
            "machine_cores": cores,
            "sequential_seconds": round(seq_s, 6),
            "proc": {str(j): r for j, r in runs.items()},
            "target_speedup": MIN_PROC_SPEEDUP_4W,
            "target_workers": top_jobs,
            "target_met": meets,
            "target_applies": target_applies,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    # Only fail when the hardware could actually have delivered the target.
    if target_applies and not meets and not args.smoke:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
