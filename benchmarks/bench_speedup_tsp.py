"""§IV evaluation, TSP workload: "one which solves an instance of the
travelling salesman problem.  Each of these programs achieves approximately
5X speedup when run on 8 cores."

The TSP fan-out is inherently *imbalanced* (branch-and-bound subtree sizes
differ per first hop), so its efficiency sits below the embarrassingly
parallel ideal — the same qualitative behaviour the paper's single summary
number averages over.
"""

import pytest

from conftest import format_table
from workloads import TSP_CITIES, record_trace, speedup_rows, tsp_source


@pytest.fixture(scope="module")
def tsp_backend():
    # n-1 = 6 first hops over up to 8 workers.
    return record_trace(tsp_source(), cores=8)


def test_tsp_output_matches_bruteforce(benchmark, tsp_backend):
    from itertools import permutations

    from repro.api import run_source

    def dist(a, b):
        lo, hi = min(a, b), max(a, b)
        return (lo * 7 + hi * 13) % 29 + 1

    n = TSP_CITIES
    best = min(
        sum(dist(a, b) for a, b in zip((0,) + perm, perm + (0,)))
        for perm in permutations(range(1, n))
    )
    result = benchmark.pedantic(
        lambda: run_source(tsp_source(), backend="sequential"),
        rounds=1, iterations=1,
    )
    assert result.output_lines() == [str(best)]


def test_tsp_speedup_table(benchmark, tsp_backend, report):
    rows = benchmark(lambda: speedup_rows(tsp_backend))
    table = format_table(
        ["cores", "virtual time", "speedup", "efficiency %"],
        [list(r) for r in rows],
    )
    by_cores = {r[0]: r for r in rows}
    s8, e8 = by_cores[8][2], by_cores[8][3]
    report.emit("§IV TSP speedup (paper: ~5x on 8 cores)", [
        *table,
        "paper:    8 cores -> ~5.0x speedup",
        f"measured: 8 cores -> {s8}x speedup, {e8}% efficiency",
        f"workload: {TSP_CITIES} synthetic cities, parallel first-hop "
        "fan-out (see EXPERIMENTS.md)",
    ])
    speedups = [r[2] for r in rows]
    assert speedups == sorted(speedups)
    # The fan-out is 6-wide and imbalanced: expect clearly sublinear scaling
    # that still lands in the low-to-mid single digits, as the paper reports.
    assert 2.0 < s8 < 6.5


def test_tsp_imbalance_visible(benchmark, tsp_backend, report):
    """The per-worker work spread explains the efficiency gap."""
    trace = tsp_backend.trace
    benchmark(lambda: [t.total_work for t in trace.walk()])
    workers = [t for t in trace.walk() if t is not trace]
    works = sorted(t.total_work for t in workers)
    report.emit("TSP worker imbalance", [
        f"workers: {len(workers)}",
        f"work per worker (sorted): {works}",
        f"max/min ratio: {round(works[-1] / max(1, works[0]), 2)}",
    ])
    assert works[-1] > works[0]  # genuinely imbalanced


def test_tsp_scheduling_cost(benchmark, tsp_backend):
    benchmark(lambda: tsp_backend.schedule(8))
