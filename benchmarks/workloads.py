"""Workload builders shared by the benchmark modules.

Scaling note (recorded per-experiment in EXPERIMENTS.md): the paper ran the
primes program to the first million primes and an unspecified TSP instance
on real 8-core hardware.  A tree-walking interpreter *in Python* is
~100-1000× slower per operation than the paper's C++ interpreter, so the
benchmarks run the same programs at reduced problem sizes — speedup shapes
are preserved because they depend on workload *structure* (iteration-space
imbalance, lock density, serial fraction), not on absolute size.
"""

from __future__ import annotations

from repro.api import run_source
from repro.programs import primes_program, tsp_program
from repro.runtime import RuntimeConfig
from repro.runtime.cost import CostModel
from repro.runtime.sim import SimBackend

#: Core counts reported by the paper's evaluation narrative (1 → 8).
CORE_COUNTS = [1, 2, 4, 8]

#: Benchmark-scale problem sizes.
PRIMES_LIMIT = 1500
TSP_CITIES = 7


def record_trace(source: str, cores: int = 8, workers: int | None = None,
                 cost_model: CostModel | None = None,
                 chunking: str = "block") -> SimBackend:
    """Run a program under the virtual-time recorder and return the backend
    (its ``.trace`` / ``.speedups`` carry the results)."""
    backend = SimBackend(
        cores=cores,
        cost_model=cost_model or CostModel(),
        config=RuntimeConfig(num_workers=workers, chunking=chunking),
    )
    run_source(source, backend=backend)
    return backend


def speedup_rows(backend: SimBackend, core_counts=None):
    """[(cores, makespan, speedup, efficiency%)] against the 1-core run."""
    curve = backend.speedups(core_counts or CORE_COUNTS)
    base = curve[1]
    rows = []
    for cores in sorted(curve):
        result = curve[cores]
        rows.append((
            cores,
            round(result.makespan),
            round(result.speedup_against(base), 2),
            round(result.efficiency_against(base) * 100, 1),
        ))
    return rows


def primes_source(limit: int = PRIMES_LIMIT) -> str:
    return primes_program(limit)


def tsp_source(cities: int = TSP_CITIES) -> str:
    return tsp_program(cities)
