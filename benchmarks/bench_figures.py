"""Figures I-III: the paper's program listings, run verbatim.

The 'result' each figure claims is that the listing is a working Tetra
program with the obvious output; the benchmark additionally times the full
pipeline (lex → parse → check → interpret) on each, which is the number an
instructor cares about for classroom-sized programs.
"""

import pytest

from repro.api import run_source
from repro.programs import (
    FIGURE_1_FACTORIAL,
    FIGURE_2_PARALLEL_SUM,
    FIGURE_3_PARALLEL_MAX,
)
from conftest import format_table


def test_figure1_factorial(benchmark, report):
    result = benchmark(lambda: run_source(FIGURE_1_FACTORIAL, inputs=["10"]))
    assert result.output_lines() == ["enter n: ", "10! = 3628800"]
    report.emit("Figure I — sequential factorial listing", [
        "paper:    listing compiles and runs (10! computed via recursion)",
        f"measured: output = {result.output_lines()[1]!r}  [OK]",
    ])


def test_figure2_parallel_sum(benchmark, report):
    result = benchmark(lambda: run_source(FIGURE_2_PARALLEL_SUM))
    assert result.output_lines() == ["5050"]
    report.emit("Figure II — parallel sum listing (2 threads)", [
        "paper:    sums 1..100 in two parallel threads -> 5050",
        f"measured: output = {result.output_lines()[0]}  [OK]",
        "checked:  results written by parallel children are visible after the join",
    ])


def test_figure3_parallel_max(benchmark, report):
    result = benchmark(lambda: run_source(FIGURE_3_PARALLEL_MAX))
    assert result.output_lines() == ["96"]
    report.emit("Figure III — parallel max listing (parallel for + lock)", [
        "paper:    finds max of [18, 32, 96, 48, 60] with the double-check lock idiom -> 96",
        f"measured: output = {result.output_lines()[0]}  [OK]",
    ])


def _collect_backend_rows():
    rows = []
    for name, src, expected in [
        ("Figure I", FIGURE_1_FACTORIAL, "10! = 3628800"),
        ("Figure II", FIGURE_2_PARALLEL_SUM, "5050"),
        ("Figure III", FIGURE_3_PARALLEL_MAX, "96"),
    ]:
        outputs = []
        for backend in ("thread", "sequential", "coop", "sim"):
            result = run_source(src, inputs=["10"], backend=backend)
            outputs.append(result.output_lines()[-1])
        assert all(o == expected for o in outputs), (name, outputs)
        rows.append([name, expected, "all 4 backends agree"])
    return rows


def test_figures_consistent_across_backends(benchmark, report):
    rows = benchmark.pedantic(_collect_backend_rows, rounds=1, iterations=1)
    report.emit("Figures I-III across backends",
                format_table(["figure", "output", "status"], rows))
