"""The compiler pipeline: Tetra source → standalone Python module.

The paper's future-work native compiler targets "C with Pthreads"; this
reproduction targets Python with ``threading`` (same pipeline position —
see DESIGN.md §4).  The script compiles Figure II, shows a slice of the
generated code, writes it to a file you can run directly, and
differential-checks it against the interpreter.

Run with:  python examples/compile_and_run.py
"""

import pathlib
import subprocess
import sys
import tempfile

from repro import run_source
from repro.compiler import compile_to_python, run_compiled
from repro.programs import FIGURE_2_PARALLEL_SUM


def main() -> None:
    code = compile_to_python(FIGURE_2_PARALLEL_SUM,
                             module_name="figure2_parallel_sum.ttr")

    print("=== a slice of the generated Python ===")
    lines = code.split("\n")
    for line in lines[:30]:
        print(f"  {line}")
    print(f"  ... ({len(lines)} lines total)")

    print("\n=== differential check: compiled vs interpreted ===")
    interpreted = run_source(FIGURE_2_PARALLEL_SUM).output
    compiled = run_compiled(FIGURE_2_PARALLEL_SUM).output
    print(f"interpreted: {interpreted.strip()}")
    print(f"compiled:    {compiled.strip()}")
    assert interpreted == compiled, "the two execution paths must agree"

    print("\n=== the module runs standalone ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "figure2_compiled.py"
        path.write_text(code)
        result = subprocess.run([sys.executable, str(path)],
                                capture_output=True, text=True, timeout=60)
        print(f"$ python {path.name}")
        print(result.stdout, end="")


if __name__ == "__main__":
    main()
