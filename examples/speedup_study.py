"""Reproduce the paper's §IV speedup evaluation on your machine.

The paper: the primes and TSP programs "achieve approximately 5X speedup
when run on 8 cores which is a 62.5% efficiency rate".  This script records
each workload once under the virtual-time backend, schedules the trace on
model machines of 1..8 cores, and prints speedup/efficiency tables — plus
the honest real-thread measurement showing why CPython needs the model
(the GIL; the paper's §I makes exactly this point about Python).

Run with:  python examples/speedup_study.py
"""

import time

from repro import run_source
from repro.programs import primes_program, tsp_program
from repro.runtime import RuntimeConfig, SimBackend


def study(title: str, source: str) -> None:
    print(f"\n=== {title} ===")
    backend = SimBackend(cores=8)
    result = run_source(source, backend=backend)
    print(f"program output: {result.output.strip()}")
    curve = backend.speedups([1, 2, 4, 8])
    base = curve[1]
    print(f"{'cores':>5}  {'virtual time':>12}  {'speedup':>7}  {'efficiency':>10}")
    for cores in sorted(curve):
        r = curve[cores]
        print(f"{cores:>5}  {round(r.makespan):>12}  "
              f"{r.speedup_against(base):>7.2f}  "
              f"{r.efficiency_against(base) * 100:>9.1f}%")
    print(f"(paper reports ~5x / 62.5% at 8 cores on its C++ interpreter)")


def gil_check() -> None:
    print("\n=== why not just use real threads? (the GIL) ===")
    source = primes_program(600)
    start = time.perf_counter()
    run_source(source, backend="sequential")
    sequential = time.perf_counter() - start
    start = time.perf_counter()
    run_source(source, backend="thread", config=RuntimeConfig(num_workers=8))
    threaded = time.perf_counter() - start
    print(f"sequential backend: {sequential:.3f}s")
    print(f"thread backend (8 workers): {threaded:.3f}s")
    print(f"'speedup' from 8 real Python threads: {sequential / threaded:.2f}x")
    print("— the paper's §I point about Python, demonstrated on ourselves.")


def main() -> None:
    study("primes workload (counts primes up to 1500)", primes_program(1500))
    study("TSP workload (7 synthetic cities)", tsp_program(7))
    gil_check()


if __name__ == "__main__":
    main()
