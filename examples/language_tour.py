"""A tour of the implemented future-work language features.

The paper's §VI wish list — "associative arrays and tuples, and error
handling ... a more robust library" — implemented and demonstrated in one
sitting, ending with the parallel word-count that combines them all.

Run with:  python examples/language_tour.py
"""

from repro import run_source
from repro.programs import WORD_COUNT_DEMO


def show(title: str, source: str, inputs=None) -> None:
    print(f"\n--- {title} " + "-" * max(0, 58 - len(title)))
    for line in source.strip("\n").split("\n"):
        print(f"    {line}")
    print("  output:")
    result = run_source(source, inputs=inputs)
    for line in result.output_lines():
        print(f"    {line}")


def main() -> None:
    show("associative arrays", """
def main():
    ages = {"ada": 36, "grace": 45}
    ages["alan"] = 41
    for name in ages:
        print(name, " is ", ages[name])
    print(keys(ages), " ", has_key(ages, "ada"))
""")

    show("typed declarations create empty containers", """
def main():
    counts {string: int} = {}
    counts["x"] = 1
    empty [real] = []
    print(counts, " ", len(empty))
""")

    show("tuples: multi-value return and unpacking", """
def minmax(xs [int]) (int, int):
    lo = xs[0]
    hi = xs[0]
    for x in xs:
        lo = min(lo, x)
        hi = max(hi, x)
    return (lo, hi)

def main():
    low, high = minmax([7, 2, 9, 4])
    print("range ", low, " to ", high)
""")

    show("error handling: try/catch and error()", """
def safe_div(a int, b int) int:
    try:
        return a / b
    catch problem:
        print("(recovered: ", problem, ")")
        return 0

def main():
    print(safe_div(10, 2))
    print(safe_div(10, 0))
    try:
        error("my own failure")
    catch e:
        print("caught: ", e)
""")

    print("\n--- all together: parallel word count " + "-" * 20)
    result = run_source(WORD_COUNT_DEMO)
    print(result.output, end="")


if __name__ == "__main__":
    main()
