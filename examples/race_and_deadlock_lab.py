"""A concurrency teaching lab: make races and deadlocks happen on demand.

This is the classroom scenario that motivates Tetra's deterministic
cooperative scheduler: instead of telling students "race conditions are
timing-dependent, you may or may not see one", the instructor *chooses* the
schedule and shows both outcomes, then shows the lock fixing it, then shows
a deadlock being caught and explained.

Run with:  python examples/race_and_deadlock_lab.py
"""

from repro import TetraDeadlockError, run_source
from repro.runtime import RuntimeConfig
from repro.runtime.coop import CoopBackend, RandomPolicy, ScriptPolicy

RACY_MAX = """
def main():
    largest = 0
    parallel for num in [90, 5]:
        if num > largest:
            largest = num
    print(largest)
"""

SAFE_MAX = """
def main():
    largest = 0
    parallel for num in [90, 5]:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    print(largest)
"""

OPPOSITE_LOCKS = """
def take_ab():
    lock a:
        x = 1
        lock b:
            x = 2

def take_ba():
    lock b:
        y = 1
        lock a:
            y = 2

def main():
    parallel:
        take_ab()
        take_ba()
"""


def run_with(source: str, policy, workers: int = 2) -> str:
    backend = CoopBackend(policy, config=RuntimeConfig(num_workers=workers))
    return run_source(source, backend=backend).output.strip()


def main() -> None:
    w1 = "worker 1 (parallel for, line 4)"
    w2 = "worker 2 (parallel for, line 4)"

    print("=== 1. the lost update, reproduced on demand ===")
    print("two workers race on `largest` without a lock.")
    good = run_with(RACY_MAX, ScriptPolicy([w1, w1, w2, w2]))
    print(f"schedule [w1 w1 w2 w2] (no interleaving):   largest = {good}")
    bad = run_with(RACY_MAX, ScriptPolicy([w2, w1, w1, w2]))
    print(f"schedule [w2 w1 w1 w2] (check/write split): largest = {bad}   <- 90 was lost!")

    print("\n=== 2. the Figure III fix survives every schedule ===")
    outcomes = {run_with(SAFE_MAX, RandomPolicy(seed)) for seed in range(20)}
    print(f"20 random schedules of the locked version -> outcomes: {outcomes}")

    print("\n=== 3. deadlock, diagnosed instead of hanging ===")
    print("two threads take locks a and b in opposite orders.")
    try:
        run_with(OPPOSITE_LOCKS, ScriptPolicy([]))  # round-robin fallback
        print("this schedule happened to dodge the deadlock")
    except TetraDeadlockError as exc:
        print("TetraDeadlockError:")
        print(f"  {exc}")

    print("\n=== 4. the same program on real OS threads ===")
    try:
        run_source(OPPOSITE_LOCKS)  # thread backend with wait-for detection
        print("real threads dodged it this time (timing!) — run again...")
    except TetraDeadlockError as exc:
        print(f"real-thread wait-for graph caught it: {exc}")


if __name__ == "__main__":
    main()
