"""Drive the parallel debugger programmatically — the paper's §III feature.

"The Tetra IDE will have multiple code views in debug mode: one for each
thread of the currently running program... step through the different
threads independently."  This script does exactly that, headlessly:
it steps one parallel thread all the way to a lock while the other is
parked, inspects both views, then lets the program finish.

Run with:  python examples/debugger_session.py
(For the interactive version: tetra dbg examples/tetra/figure2_parallel_sum.ttr)
"""

from repro.ide import DebugSession

PROGRAM = """
def transfer(amount int):
    lock account:
        balance = read_balance()
        write_balance(balance + amount)

def read_balance() int:
    return 100

def write_balance(b int):
    print("balance is now ", b)

def main():
    parallel:
        transfer(10)
        transfer(20)
"""


def show_threads(session: DebugSession) -> None:
    for view in session.threads():
        where = f"line {view.line}" if view.line else "not started"
        lock = f", wants lock '{view.waiting_lock}'" if view.waiting_lock else ""
        print(f"  [{view.id}] {view.label:40s} {view.state:28s} {where}{lock}")
        if view.variables:
            print(f"       variables: {view.variables}")


def main() -> None:
    session = DebugSession(PROGRAM)
    session.start()
    print("program paused before its first statement:")
    show_threads(session)

    main_id = session.threads()[0].id
    print("\nstep main once: the parallel block spawns two threads...")
    session.step(main_id)
    show_threads(session)

    t1, t2 = [v.id for v in session.threads() if "parallel" in v.label]

    print(f"\nrun thread {t1} independently until it blocks or finishes...")
    view = session.run_thread(t1)
    print(f"  -> {view.label}: {view.state}")

    print(f"\nnow step thread {t2}: it will hit the 'account' lock")
    view = session.run_thread(t2)
    show_threads(session)

    print("\nevaluate expressions inside a paused thread's scope:")
    for tid in (t1, t2):
        record = session.thread(tid)
        if record.is_paused:
            print(f"  thread {tid}: amount = {session.evaluate(tid, 'amount')}")

    print("\nlet everything finish:")
    session.continue_all()
    print(session.output, end="")
    print(f"finished: {session.finished}, error: {session.error}")


if __name__ == "__main__":
    main()
