"""Quickstart: embed Tetra in Python and run the paper's three listings.

Run with:  python examples/quickstart.py
"""

from repro import run_source
from repro.programs import (
    FIGURE_1_FACTORIAL,
    FIGURE_2_PARALLEL_SUM,
    FIGURE_3_PARALLEL_MAX,
)


def banner(title: str) -> None:
    print(f"\n--- {title} " + "-" * max(0, 60 - len(title)))


def main() -> None:
    # 1. Hello, parallel world: the smallest Tetra program with a
    #    first-class parallel construct.
    banner("hello, parallel world")
    result = run_source("""
def main():
    parallel:
        print("left thread says hi")
        print("right thread says hi")
    print("joined: both threads finished before this line")
""")
    print(result.output, end="")

    # 2. The paper's Figure I: sequential factorial with console I/O.
    #    Inputs are provided programmatically, the way the IDE's console
    #    pane would feed them.
    banner("Figure I: factorial")
    result = run_source(FIGURE_1_FACTORIAL, inputs=["10"])
    print(result.output, end="")

    # 3. Figure II: the two-thread parallel sum.  Results assigned inside
    #    the parallel block are visible after the join — that is the shared
    #    symbol table in action.
    banner("Figure II: parallel sum of 1..100")
    result = run_source(FIGURE_2_PARALLEL_SUM)
    print(result.output, end="")

    # 4. Figure III: parallel for + a named lock with the double-check
    #    idiom.  Lock names live in their own namespace: the lock here is
    #    called `largest`, like the variable, and that's fine.
    banner("Figure III: parallel max")
    result = run_source(FIGURE_3_PARALLEL_MAX)
    print(result.output, end="")

    # 5. Static typing with inference: errors are caught before running.
    banner("the type checker at work")
    from repro import check_source

    diagnostics = check_source("""
def main():
    x = 1
    x = "now a string"
""")
    for diag in diagnostics:
        print(diag.render())


if __name__ == "__main__":
    main()
